//! The stateless exploration loop: repeatedly execute the program under
//! test, following a search strategy through the tree of scheduling
//! choices, and report every run to the caller.

use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::config::{Backend, Config, StrategyKind};
use crate::coverage::CoverageStrategy;
use crate::events::AccessEvent;
use crate::fiber::FiberRt;
use crate::ids::ThreadId;
use crate::runtime::{
    clear_tls, finish_run_wakeups, handle_user_panic, run_virtual_thread, set_tls, take_handoff,
    Abort, Shared, Wake, WakeSlot,
};
use crate::state::{RtState, RunOutcome};
use crate::strategy::{
    Choice, DfsStrategy, FrontierStrategy, PctStrategy, PorChoice, PrefixDfsStrategy,
    RandomStrategy, ReplayStrategy, Strategy,
};

/// Builder passed to the setup closure of [`explore`]: spawns the virtual
/// threads of one run.
#[derive(Default)]
pub struct Execution {
    bodies: Vec<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("threads", &self.bodies.len())
            .finish()
    }
}

impl Execution {
    /// Spawns a virtual thread executing `f`. Threads receive dense ids in
    /// spawn order, starting at 0.
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'static) {
        self.bodies.push(Box::new(f));
    }

    /// Number of threads spawned so far.
    pub fn thread_count(&self) -> usize {
        self.bodies.len()
    }
}

/// The result of one run (one execution of the program under test).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// 0-based index of this run within the exploration.
    pub run_index: u64,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of schedule points executed.
    pub steps: usize,
    /// Preemptions consumed (switches away from enabled mid-stream threads).
    pub preemptions: usize,
    /// The full schedule (every transition), for debugging.
    pub schedule: Vec<Choice>,
    /// The decision indexes (strategy-consulted choices only); feed them
    /// to [`Config::replay`](crate::Config::replay) to reproduce this run.
    pub decisions: Vec<usize>,
    /// Per-decision sleep-set masks, parallel to
    /// [`decisions`](RunResult::decisions) (empty when partial-order
    /// reduction is off; all-zero for boolean decisions). Used by
    /// [`split_frontier`] to hand parallel workers the sleep sets a serial
    /// DFS would have at their subtree root.
    pub slept: Vec<u64>,
    /// The access log (empty unless [`Config::record_accesses`] is set).
    pub access_log: Vec<AccessEvent>,
}

/// Aggregate statistics of one exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Total runs executed.
    pub runs: u64,
    /// Runs in which all threads completed.
    pub complete: u64,
    /// Runs ending in deadlock.
    pub deadlock: u64,
    /// Runs ending in fair livelock.
    pub livelock: u64,
    /// Serial-mode runs that got stuck mid-operation.
    pub stuck_serial: u64,
    /// Runs in which a virtual thread panicked.
    pub panicked: u64,
    /// Runs that exceeded the step limit.
    pub step_limit: u64,
    /// Runs pruned by partial-order reduction (every schedulable thread
    /// was asleep); counted in [`runs`](ExploreStats::runs) as well.
    pub sleep_prunes: u64,
    /// Backtrack points inserted by DPOR happens-before analysis.
    pub backtrack_points: u64,
    /// Candidate threads masked by symmetry reduction, summed over all
    /// decisions of all runs (see
    /// [`Config::symmetry`](crate::Config::symmetry)): each masked sibling
    /// is a first-move alternative the search did not have to expand.
    /// Zero when symmetry reduction is off or never engaged.
    pub symmetry_prunes: u64,
    /// Total schedule points across all runs.
    pub total_steps: u64,
    /// Schedule points that took the same-thread continuation fast path
    /// (the strategy chose the running thread, which continued inline
    /// without a park/unpark — see [`Config::fast_path`]).
    pub fast_path_steps: u64,
    /// Baton handoffs performed through a wakeup slot (cross-thread
    /// switches, plus every step when the fast path is disabled).
    pub handoffs: u64,
    /// Runs executed by a frontier enumeration
    /// ([`split_frontier`]) solely to discover subtree prefixes for
    /// parallel exploration. These re-execute schedules the subtree
    /// workers also explore, so they are reported separately and *not*
    /// counted in [`runs`](ExploreStats::runs) — keeping `runs` comparable
    /// across worker counts. Always 0 for a plain [`explore`]; consumers
    /// aggregating a parallel exploration fill it in.
    pub frontier_replays: u64,
    /// Subtrees carved off live explorations for work-stealing thieves
    /// ([`StealPool`]); incremented by the victim at split time.
    pub splits: u64,
    /// Stolen subtrees claimed by thieves from a [`StealPool`]. At most
    /// [`splits`](ExploreStats::splits): a split subtree that the pool
    /// never hands out (e.g. the exploration ends first) is not a steal.
    pub steals: u64,
    /// Times a worker parked idle waiting for stealable work.
    pub idle_parks: u64,
    /// Stolen subtrees whose exploration actually began (the thief's
    /// first run replays the stolen prefix). At most
    /// [`steals`](ExploreStats::steals): claims skipped by cancellation
    /// are not replayed.
    pub steal_replays: u64,
    /// Longest schedule observed.
    pub max_schedule_len: usize,
    /// Decision vectors in the coverage corpus when the exploration ended
    /// (see [`CoverageStrategy`](crate::coverage::CoverageStrategy));
    /// zero for non-coverage strategies.
    pub corpus_size: u64,
    /// Distinct bits set in the coverage bitmap when the exploration
    /// ended; zero for non-coverage strategies.
    pub coverage_bits: u64,
    /// Runs that diverged from a coverage-corpus parent (as opposed to
    /// fresh random walks); zero for non-coverage strategies.
    pub mutations: u64,
    /// True when the visitor stopped the exploration before the strategy
    /// was exhausted.
    pub stopped_early: bool,
}

impl ExploreStats {
    /// Folds the statistics of another exploration into this one: counters
    /// are summed, [`max_schedule_len`](ExploreStats::max_schedule_len) is
    /// the maximum of the two, and
    /// [`stopped_early`](ExploreStats::stopped_early) is set if either
    /// exploration stopped early. Used to aggregate per-subtree results of
    /// [`explore_parallel`].
    pub fn merge(&mut self, other: &ExploreStats) {
        // Counters saturate rather than wrap: schedule counts grow
        // factorially with test size, and a huge campaign (or a buggy
        // caller merging in a loop) must at worst pin the statistics at
        // u64::MAX, never panic in debug or silently wrap in release.
        self.runs = self.runs.saturating_add(other.runs);
        self.complete = self.complete.saturating_add(other.complete);
        self.deadlock = self.deadlock.saturating_add(other.deadlock);
        self.livelock = self.livelock.saturating_add(other.livelock);
        self.stuck_serial = self.stuck_serial.saturating_add(other.stuck_serial);
        self.panicked = self.panicked.saturating_add(other.panicked);
        self.step_limit = self.step_limit.saturating_add(other.step_limit);
        self.sleep_prunes = self.sleep_prunes.saturating_add(other.sleep_prunes);
        self.backtrack_points = self.backtrack_points.saturating_add(other.backtrack_points);
        self.symmetry_prunes = self.symmetry_prunes.saturating_add(other.symmetry_prunes);
        self.total_steps = self.total_steps.saturating_add(other.total_steps);
        self.fast_path_steps = self.fast_path_steps.saturating_add(other.fast_path_steps);
        self.handoffs = self.handoffs.saturating_add(other.handoffs);
        self.frontier_replays = self.frontier_replays.saturating_add(other.frontier_replays);
        self.splits = self.splits.saturating_add(other.splits);
        self.steals = self.steals.saturating_add(other.steals);
        self.idle_parks = self.idle_parks.saturating_add(other.idle_parks);
        self.steal_replays = self.steal_replays.saturating_add(other.steal_replays);
        self.max_schedule_len = self.max_schedule_len.max(other.max_schedule_len);
        // Coverage gauges describe the (potentially shared) bitmap and
        // corpus at exploration end, not per-exploration work: merging
        // explorations that pooled one `CoverageShared` must not double-
        // count, so take the maximum. Mutations are per-run events and
        // sum like the other counters.
        self.corpus_size = self.corpus_size.max(other.corpus_size);
        self.coverage_bits = self.coverage_bits.max(other.coverage_bits);
        self.mutations = self.mutations.saturating_add(other.mutations);
        self.stopped_early |= other.stopped_early;
    }

    fn record(&mut self, run: &RunResult) {
        self.runs = self.runs.saturating_add(1);
        self.total_steps = self.total_steps.saturating_add(run.steps as u64);
        self.max_schedule_len = self.max_schedule_len.max(run.schedule.len());
        let slot = match &run.outcome {
            RunOutcome::Complete => &mut self.complete,
            RunOutcome::Deadlock => &mut self.deadlock,
            RunOutcome::Livelock => &mut self.livelock,
            RunOutcome::StuckSerial => &mut self.stuck_serial,
            RunOutcome::Panicked { .. } => &mut self.panicked,
            RunOutcome::StepLimit => &mut self.step_limit,
            RunOutcome::Pruned => &mut self.sleep_prunes,
        };
        *slot = slot.saturating_add(1);
    }
}

enum Task {
    Run {
        shared: Arc<Shared>,
        tid: usize,
        /// The virtual thread's own wakeup slot, passed along so the
        /// worker can park for its first wake without touching the state
        /// lock (the controller holds it while making the initial
        /// decision).
        slot: Arc<WakeSlot>,
        body: Box<dyn FnOnce() + Send>,
    },
    Shutdown,
}

struct PoolWorker {
    tx: Sender<Task>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of OS threads reused across runs, to amortize thread-spawn cost
/// over the (often many thousands of) executions of one exploration.
struct Pool {
    workers: Vec<PoolWorker>,
    ack_tx: Sender<usize>,
    ack_rx: Receiver<usize>,
}

impl Pool {
    fn new() -> Self {
        let (ack_tx, ack_rx) = channel();
        Pool {
            workers: Vec::new(),
            ack_tx,
            ack_rx,
        }
    }

    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (tx, rx) = channel::<Task>();
            let ack = self.ack_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lineup-worker-{}", self.workers.len()))
                .spawn(move || worker_loop(rx, ack))
                .expect("spawn worker thread");
            self.workers.push(PoolWorker {
                tx,
                handle: Some(handle),
            });
        }
    }

    fn dispatch(
        &self,
        shared: &Arc<Shared>,
        tid: usize,
        slot: Arc<WakeSlot>,
        body: Box<dyn FnOnce() + Send>,
    ) {
        self.workers[tid]
            .tx
            .send(Task::Run {
                shared: Arc::clone(shared),
                tid,
                slot,
                body,
            })
            .expect("worker alive");
    }

    /// The index of a worker whose OS thread has terminated, if any.
    /// A worker thread never exits on its own (aborted runs unwind into
    /// its `catch_unwind`), so a dead worker means its thread was killed
    /// in a way the runtime cannot recover from.
    fn dead_worker(&self) -> Option<usize> {
        self.workers
            .iter()
            .position(|w| w.handle.as_ref().is_some_and(JoinHandle::is_finished))
    }

    /// Waits for `n` workers to finish their current task. A worker thread
    /// dying mid-run would leave its ack unsent forever, so the wait
    /// periodically re-checks worker liveness and reports the death as an
    /// error (after absorbing the acks of the surviving workers) instead
    /// of hanging or panicking without diagnostics.
    fn wait_acks(&self, n: usize) -> Result<(), String> {
        let mut pending = n;
        while pending > 0 {
            match self.ack_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(_) => pending -= 1,
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(i) = self.dead_worker() {
                        return Err(format!(
                            "lineup worker thread {i} died without completing its run"
                        ));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable (the pool holds its own sender), but a
                    // diagnostic beats a panic if that ever changes.
                    return Err("worker ack channel disconnected".to_string());
                }
            }
        }
        Ok(())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Task::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

thread_local! {
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, globally) a panic hook that silences panics on worker
/// threads: aborted runs unwind via panics by design, and user panics are
/// captured and reported through [`RunOutcome::Panicked`] instead of
/// spamming stderr hundreds of thousands of times during an exploration.
fn install_quiet_panic_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IS_WORKER.with(|w| w.get()) {
                return;
            }
            prev(info);
        }));
    });
}

fn worker_loop(rx: Receiver<Task>, ack: Sender<usize>) {
    IS_WORKER.with(|w| w.set(true));
    while let Ok(task) = rx.recv() {
        match task {
            Task::Shutdown => break,
            Task::Run {
                shared,
                tid,
                slot,
                body,
            } => {
                set_tls(Arc::clone(&shared), tid, Some(Arc::clone(&slot)));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_virtual_thread(&shared, tid, &slot, body);
                }));
                clear_tls();
                if let Err(payload) = result {
                    if payload.downcast_ref::<Abort>().is_none() {
                        handle_user_panic(&shared, tid, &*payload);
                    }
                }
                drop(shared);
                let _ = ack.send(tid);
            }
        }
    }
}

/// Waits for the current run to end: the thread ending the run signals
/// the controller's wakeup slot exactly once. Periodically re-checks
/// worker liveness so a dying worker surfaces as an error instead of a
/// silent hang.
fn wait_run_over(shared: &Shared, pool: &Pool) -> Result<(), String> {
    loop {
        match shared.controller.wait_timeout(Duration::from_millis(50)) {
            Some(Wake::Run | Wake::Abort) => return Ok(()),
            None => {
                if let Some(i) = pool.dead_worker() {
                    return Err(format!(
                        "lineup worker thread {i} died without completing its run"
                    ));
                }
            }
        }
    }
}

/// Explores the schedules of a concurrent program.
///
/// `setup` is called once per run to (re)construct the program: it creates
/// the shared state of the test and spawns the virtual threads. `on_run`
/// receives every run's [`RunResult`] by reference (the result's buffers
/// are recycled across runs — clone whatever must outlive the callback);
/// return [`ControlFlow::Break`] to stop the exploration early (e.g. once
/// Line-Up has found a violation).
///
/// Returns aggregate statistics. See the crate-level documentation for an
/// example.
///
/// # Panics
///
/// Panics if `setup` spawns a different number of threads on different
/// runs, or if the program under test is nondeterministic in any way other
/// than through scheduling (stateless replay then diverges).
pub fn explore(
    config: &Config,
    setup: impl FnMut(&mut Execution),
    on_run: impl FnMut(&RunResult) -> ControlFlow<()>,
) -> ExploreStats {
    let por = config.effective_por();
    let strategy: Box<dyn Strategy + Send> = match &config.strategy {
        StrategyKind::Dfs if por => Box::new(DfsStrategy::new_por()),
        StrategyKind::Dfs => Box::new(DfsStrategy::new()),
        StrategyKind::Random { seed } => Box::new(RandomStrategy::new(
            *seed,
            config.max_runs.unwrap_or(u64::MAX),
        )),
        StrategyKind::Pct { seed, depth } => Box::new(PctStrategy::new(
            *seed,
            *depth,
            config.max_runs.unwrap_or(u64::MAX),
        )),
        StrategyKind::Coverage { seed } => Box::new(CoverageStrategy::new(
            *seed,
            config.max_runs.unwrap_or(u64::MAX),
        )),
        StrategyKind::Replay { decisions } => {
            Box::new(ReplayStrategy::from_indexes(decisions.clone()))
        }
        StrategyKind::PrefixDfs { prefix, sleep } if por => {
            Box::new(PrefixDfsStrategy::new_por(prefix.clone(), sleep.clone()))
        }
        StrategyKind::PrefixDfs { prefix, .. } => Box::new(PrefixDfsStrategy::new(prefix.clone())),
        StrategyKind::Frontier { depth } if por => Box::new(FrontierStrategy::new_por(*depth)),
        StrategyKind::Frontier { depth } => Box::new(FrontierStrategy::new(*depth)),
    };
    explore_with_strategy(config, strategy, setup, on_run)
}

/// [`explore`] with a caller-supplied strategy instead of one built from
/// [`Config::strategy`]. This is how the work-stealing engine injects a
/// [`StealingStrategy`] that streams subtree tasks from a shared
/// [`StealPool`]; everything else (backends, buffers, statistics) is
/// identical to [`explore`].
pub fn explore_with_strategy(
    config: &Config,
    strategy: Box<dyn Strategy + Send>,
    mut setup: impl FnMut(&mut Execution),
    mut on_run: impl FnMut(&RunResult) -> ControlFlow<()>,
) -> ExploreStats {
    install_quiet_panic_hook();
    let mut pool = Pool::new();
    let mut stats = ExploreStats::default();

    // One shared state for the whole exploration: runs recycle it (and
    // its schedule/decision/POR buffers and wakeup slots) via
    // `RtState::reset` instead of reallocating per run.
    let shared = Arc::new(Shared::new(RtState::new(config.clone(), 0, strategy)));
    // Execution backend: under `Backend::Fibers` every run executes
    // entirely on this OS thread, each virtual thread on its own recycled
    // fiber stack; the worker pool stays empty. Each (parallel) explorer
    // owns its own fiber runtime, so `explore_parallel` composes.
    let mut fiber_rt = match config.backend.effective() {
        Backend::Fibers => Some(FiberRt::new(
            Arc::clone(&shared),
            config.effective_fiber_stack(),
        )),
        Backend::OsThreads => None,
    };
    let mut buf = RunResult {
        run_index: 0,
        outcome: RunOutcome::Complete,
        steps: 0,
        preemptions: 0,
        schedule: Vec::new(),
        decisions: Vec::new(),
        slept: Vec::new(),
        access_log: Vec::new(),
    };

    loop {
        {
            let mut st = shared.state.lock().unwrap();
            st.reset();
            st.strategy.as_mut().expect("strategy present").begin_run();
        }

        // Run the setup closure under the setup context, so that primitive
        // constructors can register model objects (deterministically, since
        // setup itself is deterministic).
        set_tls(Arc::clone(&shared), crate::runtime::SETUP_TID, None);
        let mut ex = Execution::default();
        let setup_result = catch_unwind(AssertUnwindSafe(|| setup(&mut ex)));
        clear_tls();
        if let Err(payload) = setup_result {
            std::panic::resume_unwind(payload);
        }

        let n = ex.bodies.len();
        if let Some(rt) = fiber_rt.as_mut() {
            {
                let mut st = shared.state.lock().unwrap();
                st.init_threads(n);
            }
            rt.begin_run(ex.bodies);
            // The initial scheduling decision (also detects the 0-thread
            // case). The controller keeps its own stack and switches
            // straight into the first scheduled fiber — counted as a
            // handoff exactly like the OS backend's initial signal.
            let first = {
                let mut st = shared.state.lock().unwrap();
                if st.pick_next(false) {
                    st.handoffs += 1;
                    Some(st.current.expect("a thread was scheduled"))
                } else {
                    None
                }
            };
            if let Some(first) = first {
                // The whole run executes on this OS thread: install the
                // runtime context the switches retarget in place, and
                // silence the panic hook for the duration (aborted runs
                // unwind by design, user panics are captured).
                set_tls(Arc::clone(&shared), first, None);
                let was_worker = IS_WORKER.with(|w| w.replace(true));
                rt.run(first);
                IS_WORKER.with(|w| w.set(was_worker));
                clear_tls();
            }
            rt.end_run();
        } else {
            pool.ensure(n);
            let slots: Vec<Arc<WakeSlot>> = {
                let mut st = shared.state.lock().unwrap();
                st.init_threads(n);
                st.slots[..n].iter().map(Arc::clone).collect()
            };
            for (tid, body) in ex.bodies.into_iter().enumerate() {
                pool.dispatch(&shared, tid, Arc::clone(&slots[tid]), body);
            }
            // The initial scheduling decision (also detects the 0-thread
            // case), fired after the state lock is released so the first
            // thread cannot be woken into the lock the controller holds.
            {
                let mut st = shared.state.lock().unwrap();
                if st.pick_next(false) {
                    let first = take_handoff(&mut st);
                    drop(st);
                    first.signal(Wake::Run);
                } else {
                    let teardown = finish_run_wakeups(&mut st, None);
                    drop(st);
                    teardown.fire(&shared);
                }
            }
            // Wait for the run to end, then for every worker to go idle.
            let waited = wait_run_over(&shared, &pool).and_then(|()| pool.wait_acks(n));
            if let Err(message) = waited {
                // A worker thread died mid-run: record the wreck as a
                // panicked run, unwind every survivor, and stop the
                // exploration (the schedule tree cannot be resumed from an
                // unfinished run).
                let dead = pool.dead_worker().unwrap_or(0);
                let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                if st.run_over.is_none() {
                    st.run_over = Some(RunOutcome::Panicked {
                        thread: ThreadId(dead),
                        message,
                    });
                }
                st.abort = true;
                st.current = None;
                for slot in &st.slots {
                    slot.force_signal(Wake::Abort);
                }
                buf.run_index = stats.runs;
                buf.outcome = st.run_over.clone().expect("just set");
                buf.steps = st.step;
                buf.preemptions = st.preemptions;
                buf.schedule.clear();
                buf.decisions.clear();
                buf.slept.clear();
                buf.access_log.clear();
                drop(st);
                stats.record(&buf);
                let _ = on_run(&buf);
                stats.stopped_early = true;
                break;
            }
        }

        let mut st = shared.state.lock().unwrap();
        let outcome = st.run_over.take().expect("run ended");
        buf.run_index = stats.runs;
        buf.outcome = outcome;
        buf.steps = st.step;
        buf.preemptions = st.preemptions;
        // Swap the run's buffers out instead of reallocating: the stale
        // contents swapped back in are cleared by the next `reset`.
        std::mem::swap(&mut buf.schedule, &mut st.schedule);
        std::mem::swap(&mut buf.decisions, &mut st.decisions);
        std::mem::swap(&mut buf.access_log, &mut st.access_log);
        match st.por.as_mut() {
            Some(p) => std::mem::swap(&mut buf.slept, &mut p.slept_log),
            None => buf.slept.clear(),
        }
        stats.fast_path_steps = stats.fast_path_steps.saturating_add(st.fast_path_steps);
        stats.handoffs = stats.handoffs.saturating_add(st.handoffs);
        stats.symmetry_prunes = stats.symmetry_prunes.saturating_add(st.symmetry_prunes);
        let more = st.strategy.as_mut().expect("strategy present").end_run();
        drop(st);

        stats.record(&buf);
        let flow = on_run(&buf);

        if flow == ControlFlow::Break(()) {
            stats.stopped_early = true;
            break;
        }
        if !more {
            break;
        }
        if let Some(max) = config.max_runs {
            if stats.runs >= max {
                stats.stopped_early = true;
                break;
            }
        }
    }
    {
        let st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let strategy = st.strategy.as_ref().expect("strategy present");
        stats.backtrack_points = strategy.backtrack_points();
        if let Some(coverage) = strategy.coverage_counters() {
            stats.corpus_size = coverage.corpus_size;
            stats.coverage_bits = coverage.coverage_bits;
            stats.mutations = coverage.mutations;
        }
    }
    stats
}

/// One disjoint subtree of the schedule tree, identified by its decision
/// prefix. Produced by [`split_frontier`]; explored with
/// [`StrategyKind::PrefixDfs`]. `index` is the position of the subtree in
/// depth-first order — the order a serial DFS would reach it — which
/// parallel consumers use to pick the deterministic "first" violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeTask {
    /// Position of the subtree in DFS (serial exploration) order.
    pub index: usize,
    /// The decision prefix rooting the subtree.
    pub prefix: Vec<usize>,
    /// Sleep-set masks accumulated along the prefix (parallel to
    /// [`prefix`](SubtreeTask::prefix); empty when partial-order reduction
    /// is off). Handing these to the subtree's
    /// [`StrategyKind::PrefixDfs`] keeps sibling subtrees disjoint under
    /// reduction: a worker starts with the sleep set a serial explorer
    /// would have at the subtree root.
    pub sleep: Vec<u64>,
}

/// Partitions the schedule tree of a program into disjoint subtrees by
/// enumerating every decision prefix at depth
/// [`Config::effective_split_depth`] (paths shorter than the depth form
/// singleton subtrees). The returned tasks are in DFS order and jointly
/// cover the tree: exploring each with [`StrategyKind::PrefixDfs`] visits
/// exactly the runs of one serial DFS, each exactly once.
///
/// The enumeration itself executes one run per subtree (taking the first
/// alternative beyond the frontier), so its cost is proportional to the
/// number of subtrees, not the size of the tree.
pub fn split_frontier(config: &Config, setup: impl FnMut(&mut Execution)) -> Vec<SubtreeTask> {
    let depth = config.effective_split_depth();
    let mut frontier_config = config.clone();
    frontier_config.strategy = StrategyKind::Frontier { depth };
    frontier_config.max_runs = None;
    let mut tasks = Vec::new();
    explore(&frontier_config, setup, |run| {
        let cut = run.decisions.len().min(depth);
        tasks.push(SubtreeTask {
            index: tasks.len(),
            prefix: run.decisions[..cut].to_vec(),
            sleep: run
                .slept
                .get(..cut)
                .map(<[u64]>::to_vec)
                .unwrap_or_default(),
        });
        ControlFlow::Continue(())
    });
    tasks
}

/// Cross-worker coordination for [`explore_parallel`] when the consumer
/// stops at the first violation: workers report the subtree index at which
/// they found one, and subtrees *after* the best (lowest) reported index
/// are skipped or cut short. Subtrees before it keep running — one of them
/// may still contain an earlier violation — so the winning violation is
/// always the one a serial DFS would have found first, independent of
/// worker timing.
#[derive(Debug)]
pub struct ParallelCancel {
    best: AtomicUsize,
}

impl Default for ParallelCancel {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelCancel {
    /// Creates a token with no reported violation.
    pub fn new() -> Self {
        ParallelCancel {
            best: AtomicUsize::new(usize::MAX),
        }
    }

    /// Records a violation in the subtree with the given DFS index.
    pub fn report(&self, subtree_index: usize) {
        self.best.fetch_min(subtree_index, Ordering::SeqCst);
    }

    /// Whether work on the subtree with the given DFS index has become
    /// irrelevant (a violation exists in an earlier subtree). Checked by
    /// workers at run boundaries to keep stop-at-first-violation prompt.
    pub fn should_skip(&self, subtree_index: usize) -> bool {
        self.best.load(Ordering::SeqCst) < subtree_index
    }

    /// The lowest subtree index reported so far, if any.
    pub fn winner(&self) -> Option<usize> {
        match self.best.load(Ordering::SeqCst) {
            usize::MAX => None,
            i => Some(i),
        }
    }
}

/// Explores disjoint schedule subtrees on `workers` OS threads.
///
/// `tasks` usually comes from [`split_frontier`]. Each worker repeatedly
/// claims the next unclaimed task from a shared queue and calls
/// `run_subtree` on it; the callback is expected to run its own
/// [`explore`] with [`StrategyKind::PrefixDfs`] over the task's prefix
/// (constructing a fresh instance of the program under test — subtree
/// explorations share nothing) and return that exploration's statistics.
/// Tasks whose index lies after a violation reported through
/// [`ParallelCancel::report`] are skipped without invoking the callback.
///
/// Returns the merged statistics of all subtree explorations (see
/// [`ExploreStats::merge`]). The per-subtree statistics are
/// order-independent sums, so the merged result is deterministic whenever
/// no early stop is involved.
pub fn explore_parallel<F>(workers: usize, tasks: &[SubtreeTask], run_subtree: F) -> ExploreStats
where
    F: Fn(&SubtreeTask, &ParallelCancel) -> ExploreStats + Sync,
{
    assert!(workers >= 1, "workers must be at least 1");
    let cancel = ParallelCancel::new();
    let next = AtomicUsize::new(0);
    let merged = std::sync::Mutex::new(ExploreStats::default());
    let threads = workers.min(tasks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = ExploreStats::default();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= tasks.len() {
                        break;
                    }
                    let task = &tasks[i];
                    if cancel.should_skip(task.index) {
                        continue;
                    }
                    local.merge(&run_subtree(task, &cancel));
                }
                merged.lock().unwrap().merge(&local);
            });
        }
    });
    merged.into_inner().unwrap()
}

/// One unit of work-stealing exploration: a schedule subtree addressed by
/// its decision prefix, with the sleep masks a serial DFS would have
/// accumulated along it (see
/// [`StolenSubtree`](crate::strategy::StolenSubtree)).
#[derive(Debug, Clone)]
pub struct StealTask {
    /// Decision prefix rooting the subtree (empty for the whole tree).
    pub prefix: Vec<usize>,
    /// Per-decision sleep masks along the prefix (zeros when partial-order
    /// reduction is off).
    pub sleep: Vec<u64>,
    /// True when this subtree was split off a live victim (as opposed to
    /// the root task the pool is seeded with).
    pub stolen: bool,
}

#[derive(Debug)]
struct StealQueue {
    queue: VecDeque<StealTask>,
    /// Tasks currently being explored by a worker.
    active: usize,
    /// Which workers currently hold a task (so an abandoned exploration
    /// can be released even when the strategy that held it is gone).
    holding: Vec<bool>,
    /// A worker panicked: everyone unparks and bails out.
    poisoned: bool,
    /// The exploration was cut short (budget exhausted): remaining tasks
    /// are dropped and parked workers exit.
    stopped: bool,
}

/// Shared coordinator of a work-stealing exploration.
///
/// The pool starts with one root task (the whole schedule tree). Workers
/// [`claim`](StealPool::claim) tasks and explore them depth-first; a worker
/// finding the queue empty flags a victim — chosen by deterministic
/// round-robin from its own id and retry epoch — and parks. The victim
/// services the flag at its next run boundary by splitting its deepest
/// unexplored branch point ([`DfsStrategy::split_deepest`]) and pushing the
/// stolen subtree, which wakes the thief. Prefix replays happen only when a
/// stolen task is actually explored, never eagerly.
#[derive(Debug)]
pub struct StealPool {
    workers: usize,
    state: Mutex<StealQueue>,
    idle: Condvar,
    /// Per-worker steal-request flags, set by idle thieves on their chosen
    /// victim and serviced by the victim between runs. A flag stays set
    /// until the victim manages to split (deeper branch points appear as
    /// its exploration proceeds), so a thief never needs to re-request
    /// from the same victim.
    requests: Vec<AtomicBool>,
    splits: AtomicU64,
    steals: AtomicU64,
    idle_parks: AtomicU64,
    steal_replays: AtomicU64,
}

/// How many subtrees a victim gives away per serviced steal request.
/// Deepest-first splits are near-leaf-sized, so a batch amortizes the
/// park/unpark handshake; later splits in a batch climb toward the root
/// and carry progressively larger subtrees.
const STEAL_BATCH: usize = 16;

impl StealPool {
    /// Creates a pool for `workers` workers, seeded with the root task
    /// covering the whole schedule tree.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "workers must be at least 1");
        let mut queue = VecDeque::new();
        queue.push_back(StealTask {
            prefix: Vec::new(),
            sleep: Vec::new(),
            stolen: false,
        });
        StealPool {
            workers,
            state: Mutex::new(StealQueue {
                queue,
                active: 0,
                holding: vec![false; workers],
                poisoned: false,
                stopped: false,
            }),
            idle: Condvar::new(),
            requests: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            splits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            idle_parks: AtomicU64::new(0),
            steal_replays: AtomicU64::new(0),
        }
    }

    /// Claims the next task for `worker`, parking (with steal requests
    /// out) while the queue is empty but other workers still hold
    /// splittable work. Returns `None` when the exploration is over: no
    /// queued or active tasks remain, the pool was poisoned by a panicking
    /// worker, or it was stopped.
    pub fn claim(&self, worker: usize) -> Option<StealTask> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(!st.holding[worker], "claim while already holding a task");
        let mut epoch = 0usize;
        loop {
            if st.poisoned || st.stopped {
                return None;
            }
            if let Some(task) = st.queue.pop_front() {
                st.active += 1;
                st.holding[worker] = true;
                if task.stolen {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(task);
            }
            if st.active == 0 {
                // Wake any other parked thieves so they observe the end.
                self.idle.notify_all();
                return None;
            }
            // Deterministic round-robin victim selection: worker `w`
            // cycles through (w+1, …, w+workers−1) mod workers as its
            // retry epoch advances.
            if self.workers > 1 {
                let victim = (worker + 1 + epoch % (self.workers - 1)) % self.workers;
                self.requests[victim].store(true, Ordering::Release);
                epoch += 1;
            }
            self.idle_parks.fetch_add(1, Ordering::Relaxed);
            // The timeout is a backstop: it re-issues requests when the
            // flagged victim finished (or died) without splitting.
            let (guard, _) = self
                .idle
                .wait_timeout(st, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Marks `worker`'s current task finished (fully explored, abandoned
    /// to cancellation, or given up on early exit). Idempotent per claim.
    pub fn finish_task(&self, worker: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.holding[worker] {
            st.holding[worker] = false;
            st.active -= 1;
            self.idle.notify_all();
        }
    }

    /// Queues a subtree split off a victim's live exploration and wakes
    /// parked thieves.
    pub fn push_stolen(&self, prefix: Vec<usize>, sleep: Vec<u64>) {
        self.splits.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.queue.push_back(StealTask {
            prefix,
            sleep,
            stolen: true,
        });
        drop(st);
        self.idle.notify_all();
    }

    /// Whether an idle worker has flagged `worker` as a steal victim.
    pub fn steal_requested(&self, worker: usize) -> bool {
        self.requests[worker].load(Ordering::Acquire)
    }

    /// Clears `worker`'s steal-request flag (after a successful split).
    pub fn clear_request(&self, worker: usize) {
        self.requests[worker].store(false, Ordering::Release);
    }

    /// Records that a stolen task's exploration actually began (its prefix
    /// is being replayed by the thief).
    pub fn note_steal_replay(&self) {
        self.steal_replays.fetch_add(1, Ordering::Relaxed);
    }

    /// Poisons the pool: a worker panicked. Every parked worker wakes and
    /// [`claim`](StealPool::claim) returns `None` from then on, so peers
    /// exit instead of waiting forever for work that will never come.
    pub fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.poisoned = true;
        drop(st);
        self.idle.notify_all();
    }

    /// Stops the pool: remaining tasks are dropped and parked workers
    /// exit. Used when a global run budget is exhausted.
    pub fn stop(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.stopped = true;
        drop(st);
        self.idle.notify_all();
    }

    /// Writes the pool's steal counters into `stats`.
    pub fn export_stats(&self, stats: &mut ExploreStats) {
        stats.splits = self.splits.load(Ordering::Relaxed);
        stats.steals = self.steals.load(Ordering::Relaxed);
        stats.idle_parks = self.idle_parks.load(Ordering::Relaxed);
        stats.steal_replays = self.steal_replays.load(Ordering::Relaxed);
    }
}

/// Claim-time filter for a [`StealingStrategy`]: decides whether a task
/// from the pool should be skipped outright (marked finished without
/// exploring), e.g. because the whole subtree lies after an already-found
/// violation in serial order.
pub type StealSkip = Box<dyn Fn(&StealTask) -> bool + Send>;

/// Abandon confirmation for a [`StealingStrategy`]: given the decision
/// vector of the run the strategy just finished, decides whether a
/// pending abandon request still applies there (see
/// [`StealingStrategy::claim_first`]).
pub type AbandonConfirm = Box<dyn Fn(&[usize]) -> bool + Send>;

/// The strategy driving one worker of a work-stealing exploration: a
/// [`PrefixDfsStrategy`] over the current task, streaming new tasks from
/// the shared [`StealPool`] whenever the current subtree is exhausted (or
/// abandoned via [`StealingStrategy::abandon_flag`]), and servicing steal
/// requests from idle peers between runs by splitting its deepest
/// unexplored branch point.
///
/// Each worker runs **one** [`explore_with_strategy`] call for the whole
/// exploration, so runtime setup (fiber pools, wakeup slots, buffers) is
/// paid once per worker instead of once per subtree.
pub struct StealingStrategy {
    pool: Arc<StealPool>,
    worker: usize,
    por: bool,
    /// Skip predicate consulted before starting a claimed task (e.g. the
    /// task lies after an already-found violation in serial order).
    skip: Option<StealSkip>,
    /// Set by the run visitor to abandon the current subtree at the next
    /// run boundary (everything left in it is irrelevant).
    abandon: Arc<AtomicBool>,
    /// Confirms a pending abandon request against the current decision
    /// vector before it is honored. The explorer calls `end_run` *before*
    /// the visitor sees the finished run, so a flag raised against the
    /// final run of a task is only observed after the strategy has moved
    /// on to a fresh task — cancelling that one would skip work the
    /// request never covered. `None` honors every request unconditionally.
    confirm: Option<AbandonConfirm>,
    inner: Option<PrefixDfsStrategy>,
    /// Backtrack points accumulated over finished tasks.
    backtracks: u64,
}

impl std::fmt::Debug for StealingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealingStrategy")
            .field("worker", &self.worker)
            .field("por", &self.por)
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl StealingStrategy {
    /// Creates the strategy for `worker` and claims its first task;
    /// returns `None` when the pool has no work for it (so the caller
    /// skips its exploration entirely). `confirm`, when given, is asked —
    /// with the decision vector of the run the strategy just finished —
    /// whether a pending abandon request still applies there; a stale
    /// request (raised against a task already retired) is discarded
    /// instead of cancelling the current task.
    pub fn claim_first(
        pool: Arc<StealPool>,
        worker: usize,
        por: bool,
        skip: Option<StealSkip>,
        confirm: Option<AbandonConfirm>,
    ) -> Option<Self> {
        let mut s = StealingStrategy {
            pool,
            worker,
            por,
            skip,
            abandon: Arc::new(AtomicBool::new(false)),
            confirm,
            inner: None,
            backtracks: 0,
        };
        if s.acquire() {
            Some(s)
        } else {
            None
        }
    }

    /// The flag a run visitor sets to abandon the current subtree: the
    /// strategy consumes it at the next run boundary, drops the rest of
    /// the subtree, and moves on to the next task.
    pub fn abandon_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.abandon)
    }

    fn acquire(&mut self) -> bool {
        while let Some(task) = self.pool.claim(self.worker) {
            if self.skip.as_ref().is_some_and(|f| f(&task)) {
                self.pool.finish_task(self.worker);
                continue;
            }
            if task.stolen {
                self.pool.note_steal_replay();
            }
            self.inner = Some(if self.por {
                PrefixDfsStrategy::new_por(task.prefix, task.sleep)
            } else {
                PrefixDfsStrategy::new(task.prefix)
            });
            return true;
        }
        false
    }

    fn inner(&mut self) -> &mut PrefixDfsStrategy {
        self.inner.as_mut().expect("a task is being explored")
    }

    fn retire_inner(&mut self) {
        if let Some(inner) = self.inner.take() {
            self.backtracks += inner.backtrack_points();
        }
        self.pool.finish_task(self.worker);
    }

    /// Whether a pending abandon request applies to the task currently
    /// being explored. Sound to honor whenever `confirm` accepts the
    /// decision vector of the run that just finished: every remaining run
    /// of the task is lexicographically greater than that one.
    fn confirmed_abandon(&self) -> bool {
        match (&self.confirm, &self.inner) {
            (Some(confirm), Some(inner)) => confirm(&inner.current_decisions()),
            _ => true,
        }
    }
}

impl Strategy for StealingStrategy {
    fn begin_run(&mut self) {
        self.inner().begin_run();
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        self.inner().choose(num_alts)
    }

    fn choose_thread(&mut self, candidates: &[usize], step: usize) -> usize {
        self.inner().choose_thread(candidates, step)
    }

    fn choose_thread_por(
        &mut self,
        candidates: &[usize],
        cur_sleep: u64,
        step: usize,
    ) -> PorChoice {
        self.inner().choose_thread_por(candidates, cur_sleep, step)
    }

    fn add_backtrack(&mut self, node: usize, thread: usize) {
        self.inner().add_backtrack(node, thread);
    }

    fn backtrack_points(&self) -> u64 {
        self.backtracks
            + self
                .inner
                .as_ref()
                .map_or(0, PrefixDfsStrategy::backtrack_points)
    }

    fn end_run(&mut self) -> bool {
        let more = if self.abandon.swap(false, Ordering::AcqRel) && self.confirmed_abandon() {
            false
        } else {
            let inner = self.inner.as_mut().expect("a task is being explored");
            let more = inner.end_run();
            if more && self.pool.steal_requested(self.worker) {
                let mut served = 0;
                while served < STEAL_BATCH {
                    match inner.split_deepest() {
                        Some(sub) => {
                            self.pool.push_stolen(sub.prefix, sub.sleep);
                            served += 1;
                        }
                        None => break,
                    }
                }
                if served > 0 {
                    self.pool.clear_request(self.worker);
                }
            }
            more
        };
        if more {
            return true;
        }
        self.retire_inner();
        self.acquire()
    }
}

/// Cross-worker cancellation for a work-stealing exploration that stops at
/// the first violation, keyed by the run's *decision vector*: the serial
/// DFS visits runs in lexicographic decision order, so the lex-least
/// violating decision vector is exactly the violation a serial exploration
/// reports first, independent of worker timing.
#[derive(Debug, Default)]
pub struct LexCancel {
    reported: AtomicBool,
    winner: Mutex<Option<Vec<usize>>>,
}

impl LexCancel {
    /// Creates a token with no reported violation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violating run; keeps the lexicographically least decision
    /// vector reported so far.
    pub fn report(&self, decisions: &[usize]) {
        let mut w = self.winner.lock().unwrap_or_else(|e| e.into_inner());
        match &*w {
            Some(best) if best.as_slice() <= decisions => {}
            _ => *w = Some(decisions.to_vec()),
        }
        drop(w);
        self.reported.store(true, Ordering::Release);
    }

    /// Whether a run with this decision vector is irrelevant: a violation
    /// strictly before it in serial order has been reported. The winner
    /// itself (and anything before it) keeps running.
    pub fn should_skip(&self, decisions: &[usize]) -> bool {
        if !self.reported.load(Ordering::Acquire) {
            return false;
        }
        let w = self.winner.lock().unwrap_or_else(|e| e.into_inner());
        w.as_ref().is_some_and(|best| best.as_slice() < decisions)
    }

    /// Whether a whole subtree rooted at `prefix` is irrelevant: every run
    /// in it extends `prefix`, so all of them come after the winner
    /// whenever the winner is ≤ the prefix (the winner being a strict
    /// extension of `prefix` means the subtree still contains earlier
    /// runs, and it keeps running).
    pub fn should_skip_subtree(&self, prefix: &[usize]) -> bool {
        if !self.reported.load(Ordering::Acquire) {
            return false;
        }
        let w = self.winner.lock().unwrap_or_else(|e| e.into_inner());
        w.as_ref().is_some_and(|best| best.as_slice() <= prefix)
    }

    /// The winning (lex-least) violating decision vector, if any.
    pub fn winner(&self) -> Option<Vec<usize>> {
        self.winner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ThreadId;
    use crate::runtime::{block_current, op_boundary, unblock, yield_point};
    use crate::state::BlockKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn count_runs(config: &Config, setup: impl FnMut(&mut Execution)) -> ExploreStats {
        explore(config, setup, |_| ControlFlow::Continue(()))
    }

    #[test]
    fn zero_threads_complete_once() {
        let stats = count_runs(&Config::exhaustive(), |_| {});
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.complete, 1);
    }

    #[test]
    fn single_thread_single_run() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            ex.spawn(|| {
                op_boundary();
                op_boundary();
            });
        });
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.complete, 1);
    }

    /// Two threads with two boundaries each: each thread is three segments
    /// (start..b1, b1..b2, b2..finish), so the number of interleavings is
    /// C(6,3) = 20. (POR off: this asserts the *full* enumeration.)
    #[test]
    fn two_threads_enumerate_all_interleavings() {
        let stats = count_runs(&Config::exhaustive().with_por(false), |ex| {
            for _ in 0..2 {
                ex.spawn(|| {
                    op_boundary();
                    op_boundary();
                });
            }
        });
        assert_eq!(stats.runs, 20);
        assert_eq!(stats.complete, 20);
    }

    /// The same program under partial-order reduction: every transition is
    /// independent (boundaries touch no object), so one representative
    /// schedule suffices.
    #[test]
    fn por_collapses_independent_interleavings() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            for _ in 0..2 {
                ex.spawn(|| {
                    op_boundary();
                    op_boundary();
                });
            }
        });
        assert!(
            stats.runs < 20,
            "POR must prune commuting interleavings, got {} runs",
            stats.runs
        );
        assert!(stats.complete >= 1);
        assert_eq!(
            stats.complete + stats.sleep_prunes,
            stats.runs,
            "every run either completes or is pruned"
        );
    }

    /// Under POR, conflicting writes to one object still get both orders
    /// explored (a DPOR backtrack point), while the independent schedule
    /// interleavings around them are pruned.
    #[test]
    fn por_explores_both_orders_of_a_conflict() {
        use crate::ids::ObjId;
        let orders = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
        let trace = Arc::new(std::sync::Mutex::new(Vec::new()));
        let t2 = Arc::clone(&trace);
        let stats = explore(
            &Config::exhaustive(),
            move |ex| {
                t2.lock().unwrap().clear();
                for me in 0..2usize {
                    let t = Arc::clone(&t2);
                    ex.spawn(move || {
                        crate::runtime::schedule(ObjId(7));
                        t.lock().unwrap().push(me);
                    });
                }
            },
            |run| {
                if run.outcome == RunOutcome::Complete {
                    orders.lock().unwrap().insert(trace.lock().unwrap().clone());
                }
                ControlFlow::Continue(())
            },
        );
        let orders = Arc::try_unwrap(orders).unwrap().into_inner().unwrap();
        assert!(orders.contains(&vec![0, 1]), "write order 0<1 explored");
        assert!(orders.contains(&vec![1, 0]), "write order 1<0 explored");
        assert!(
            stats.backtrack_points >= 1,
            "the conflict demands a backtrack"
        );
        let full = count_runs(&Config::exhaustive().with_por(false), |ex| {
            for _ in 0..2 {
                ex.spawn(|| crate::runtime::schedule(ObjId(7)));
            }
        });
        assert!(
            stats.runs < full.runs,
            "POR ({} runs) must beat full enumeration ({} runs)",
            stats.runs,
            full.runs
        );
    }

    /// Coverage-guided exploration honors the run budget and reports its
    /// feedback state (corpus, bitmap population, mutation count) through
    /// [`ExploreStats`].
    #[test]
    fn coverage_strategy_reports_feedback_stats() {
        let setup = |ex: &mut Execution| {
            for _ in 0..3 {
                ex.spawn(|| {
                    yield_point();
                    yield_point();
                });
            }
        };
        let stats = count_runs(&Config::coverage(42, 50), setup);
        assert_eq!(stats.runs, 50);
        assert!(stats.coverage_bits > 0, "decisions must light bitmap bits");
        assert!(stats.corpus_size > 0, "novel runs must enter the corpus");
        assert!(stats.mutations > 0, "corpus parents must get mutated");
        // Fixed seed ⇒ identical campaign, including the feedback state.
        let again = count_runs(&Config::coverage(42, 50), setup);
        assert_eq!(stats, again);
        // POR must stay disengaged: feedback only orders exploration.
        assert_eq!(stats.sleep_prunes, 0);
        assert_eq!(stats.backtrack_points, 0);
    }

    /// Serial mode must see exactly the same interleavings here, because
    /// all schedule points are boundaries.
    #[test]
    fn serial_mode_boundaries_only() {
        let stats = count_runs(&Config::serial(), |ex| {
            for _ in 0..2 {
                ex.spawn(|| {
                    op_boundary();
                    op_boundary();
                });
            }
        });
        assert_eq!(stats.runs, 20);
    }

    /// A thread that blocks with nobody to unblock it deadlocks every run.
    #[test]
    fn deadlock_detected() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            ex.spawn(|| {
                block_current(BlockKind::Untimed);
            });
            ex.spawn(|| {
                op_boundary();
            });
        });
        assert!(stats.runs >= 1);
        assert_eq!(stats.complete, 0);
        assert!(stats.deadlock >= 1);
        assert_eq!(stats.deadlock + stats.sleep_prunes, stats.runs);
    }

    /// An unbounded spin loop whose condition is never satisfied is a fair
    /// livelock, not a hang.
    #[test]
    fn livelock_detected() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            ex.spawn(|| loop {
                yield_point();
            });
        });
        assert!(stats.runs >= 1);
        assert_eq!(stats.livelock, stats.runs);
    }

    /// A spin loop waiting for a flag set by another thread terminates
    /// under the fair scheduler.
    #[test]
    fn fair_scheduler_unblocks_spinners() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            ex.spawn(move || {
                while flag.load(Ordering::SeqCst) == 0 {
                    yield_point();
                }
            });
            ex.spawn(move || {
                op_boundary();
                f2.store(1, Ordering::SeqCst);
                // Announce progress to the model (stores through real
                // atomics are invisible; a boundary is a progress point).
                op_boundary();
            });
        });
        assert_eq!(
            stats.livelock + stats.complete + stats.sleep_prunes,
            stats.runs
        );
        assert!(stats.complete > 0, "some schedules must complete");
    }

    /// Unblocking makes a blocked thread runnable again.
    #[test]
    fn block_unblock_roundtrip() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            ex.spawn(|| {
                block_current(BlockKind::Untimed);
                op_boundary();
            });
            ex.spawn(|| {
                op_boundary();
                unblock(ThreadId(0));
                op_boundary();
            });
        });
        assert!(stats.complete > 0);
        // Schedules where thread 1 unblocks before thread 0 blocks cannot
        // exist (unblock of a runnable thread is a no-op and thread 0
        // blocks afterwards with nobody left): those deadlock.
        assert_eq!(
            stats.complete + stats.deadlock + stats.sleep_prunes,
            stats.runs
        );
    }

    /// A timed block can be resumed by the scheduler (modelling a timeout).
    #[test]
    fn timed_block_can_time_out() {
        let timed_out_ref = std::sync::Arc::new(std::sync::Mutex::new((0u32, 0u32)));
        let tor = Arc::clone(&timed_out_ref);
        let stats = explore(
            &Config::exhaustive(),
            move |ex| {
                let tor = Arc::clone(&tor);
                ex.spawn(move || {
                    let r = block_current(BlockKind::Timed);
                    let mut g = tor.lock().unwrap();
                    match r {
                        crate::runtime::BlockResult::TimedOut => g.0 += 1,
                        crate::runtime::BlockResult::Resumed => g.1 += 1,
                    }
                });
                ex.spawn(|| {
                    op_boundary();
                    unblock(ThreadId(0));
                });
            },
            |_| ControlFlow::Continue(()),
        );
        let g = timed_out_ref.lock().unwrap();
        let (timed_out, resumed) = *g;
        assert!(stats.complete > 0);
        assert!(timed_out > 0, "some schedules fire the timeout");
        assert!(resumed > 0, "some schedules grant the wakeup");
    }

    /// The panic of a virtual thread is reported, not propagated.
    #[test]
    fn user_panic_is_captured() {
        let stats = count_runs(&Config::exhaustive(), |ex| {
            ex.spawn(|| panic!("boom"));
        });
        assert_eq!(stats.panicked, stats.runs);
    }

    /// Stopping early via ControlFlow::Break.
    #[test]
    fn visitor_can_stop_exploration() {
        let stats = explore(
            &Config::exhaustive(),
            |ex| {
                for _ in 0..2 {
                    ex.spawn(|| {
                        op_boundary();
                        op_boundary();
                    });
                }
            },
            |_| ControlFlow::Break(()),
        );
        assert_eq!(stats.runs, 1);
        assert!(stats.stopped_early);
    }

    /// Random strategy runs exactly max_runs runs.
    #[test]
    fn random_strategy_run_budget() {
        let stats = count_runs(&Config::random(3, 17), |ex| {
            for _ in 0..2 {
                ex.spawn(|| {
                    op_boundary();
                    op_boundary();
                });
            }
        });
        assert_eq!(stats.runs, 17);
    }

    /// Replay determinism: the same exploration twice yields identical
    /// schedules run by run.
    #[test]
    fn exploration_is_deterministic() {
        let collect = |_: ()| {
            let mut schedules = Vec::new();
            explore(
                &Config::exhaustive(),
                |ex| {
                    for _ in 0..2 {
                        ex.spawn(|| {
                            op_boundary();
                            yield_point();
                            op_boundary();
                        });
                    }
                },
                |run| {
                    schedules.push(run.schedule.clone());
                    ControlFlow::Continue(())
                },
            );
            schedules
        };
        assert_eq!(collect(()), collect(()));
    }

    /// A runaway loop without yields trips the per-run step limit.
    #[test]
    fn step_limit_backstop() {
        let mut config = Config::exhaustive();
        config.max_steps = 50;
        config.max_runs = Some(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let stats = explore(
            &config,
            move |ex| {
                let c = Arc::clone(&counter);
                ex.spawn(move || loop {
                    // A "busy" loop that makes progress every step (so the
                    // livelock detector stays quiet) via boundaries.
                    op_boundary();
                    c.fetch_add(1, Ordering::SeqCst);
                });
            },
            |run| {
                assert_eq!(run.outcome, crate::state::RunOutcome::StepLimit);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(stats.step_limit, stats.runs);
    }

    /// Context classification: the setup closure is not a virtual thread;
    /// virtual threads are; the controller is neither.
    #[test]
    fn context_classification() {
        assert!(!crate::runtime::is_model_active());
        let flags = Arc::new(std::sync::Mutex::new((false, false)));
        let f2 = Arc::clone(&flags);
        explore(
            &Config::exhaustive().with_max_runs(1),
            move |ex| {
                // Setup: registration works, but scheduling is inactive.
                f2.lock().unwrap().0 = crate::runtime::is_model_active();
                let f3 = Arc::clone(&f2);
                ex.spawn(move || {
                    f3.lock().unwrap().1 = crate::runtime::is_model_active();
                });
            },
            |_| ControlFlow::Continue(()),
        );
        let (in_setup, in_thread) = *flags.lock().unwrap();
        assert!(!in_setup, "setup is not a scheduled context");
        assert!(in_thread, "virtual threads are");
    }

    /// Object ids are deterministic across replayed runs.
    #[test]
    fn object_registration_is_deterministic() {
        let ids = std::sync::Mutex::new(Vec::new());
        explore(
            // POR off: the comparison needs more than one run.
            &Config::exhaustive().with_por(false),
            |ex| {
                let a = crate::runtime::register_object();
                let b = crate::runtime::register_object();
                ids.lock().unwrap().push((a, b));
                for _ in 0..2 {
                    ex.spawn(|| {
                        op_boundary();
                    });
                }
            },
            |_| ControlFlow::Continue(()),
        );
        let ids = ids.into_inner().unwrap();
        assert!(ids.len() > 1);
        assert!(ids.iter().all(|&p| p == ids[0]));
    }

    /// merge() sums counters, maxes `max_schedule_len`, ORs
    /// `stopped_early`.
    #[test]
    fn stats_merge_combines_fields() {
        let mut a = ExploreStats {
            runs: 3,
            complete: 2,
            deadlock: 1,
            livelock: 0,
            stuck_serial: 0,
            panicked: 0,
            step_limit: 0,
            sleep_prunes: 2,
            backtrack_points: 1,
            symmetry_prunes: 7,
            total_steps: 40,
            fast_path_steps: 30,
            handoffs: 10,
            frontier_replays: 2,
            splits: 4,
            steals: 3,
            idle_parks: 6,
            steal_replays: 2,
            max_schedule_len: 9,
            corpus_size: 3,
            coverage_bits: 100,
            mutations: 2,
            stopped_early: false,
        };
        let b = ExploreStats {
            runs: 5,
            complete: 4,
            deadlock: 0,
            livelock: 1,
            stuck_serial: 0,
            panicked: 0,
            step_limit: 0,
            sleep_prunes: 3,
            backtrack_points: 4,
            symmetry_prunes: 5,
            total_steps: 60,
            fast_path_steps: 45,
            handoffs: 15,
            frontier_replays: 1,
            splits: 1,
            steals: 1,
            idle_parks: 2,
            steal_replays: 1,
            max_schedule_len: 14,
            corpus_size: 2,
            coverage_bits: 140,
            mutations: 3,
            stopped_early: true,
        };
        a.merge(&b);
        assert_eq!(a.runs, 8);
        assert_eq!(a.complete, 6);
        assert_eq!(a.deadlock, 1);
        assert_eq!(a.livelock, 1);
        assert_eq!(a.sleep_prunes, 5);
        assert_eq!(a.backtrack_points, 5);
        assert_eq!(a.symmetry_prunes, 12);
        assert_eq!(a.total_steps, 100);
        assert_eq!(a.fast_path_steps, 75);
        assert_eq!(a.handoffs, 25);
        assert_eq!(a.frontier_replays, 3);
        assert_eq!(a.splits, 5);
        assert_eq!(a.steals, 4);
        assert_eq!(a.idle_parks, 8);
        assert_eq!(a.steal_replays, 3);
        assert_eq!(a.max_schedule_len, 14, "merge takes the max, not the sum");
        assert_eq!(a.corpus_size, 3, "shared-bitmap gauges merge by max");
        assert_eq!(a.coverage_bits, 140, "shared-bitmap gauges merge by max");
        assert_eq!(a.mutations, 5, "mutated runs are per-run work and sum");
        assert!(
            a.stopped_early,
            "either side stopping early marks the merge"
        );
        // Merging a default (empty) exploration changes nothing.
        let snapshot = a.clone();
        a.merge(&ExploreStats::default());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = ExploreStats {
            runs: u64::MAX - 1,
            total_steps: u64::MAX,
            complete: u64::MAX / 2,
            ..Default::default()
        };
        a.merge(&ExploreStats {
            runs: 5,
            total_steps: 100,
            complete: u64::MAX / 2 + 10,
            ..Default::default()
        });
        assert_eq!(a.runs, u64::MAX);
        assert_eq!(a.total_steps, u64::MAX);
        assert_eq!(a.complete, u64::MAX);
    }

    #[test]
    fn merge_keeps_own_larger_schedule_len() {
        let mut a = ExploreStats {
            max_schedule_len: 20,
            ..Default::default()
        };
        a.merge(&ExploreStats {
            max_schedule_len: 5,
            stopped_early: false,
            ..Default::default()
        });
        assert_eq!(a.max_schedule_len, 20);
        assert!(!a.stopped_early);
    }

    fn boundary_setup(threads: usize, boundaries: usize) -> impl FnMut(&mut Execution) {
        move |ex: &mut Execution| {
            for _ in 0..threads {
                ex.spawn(move || {
                    for _ in 0..boundaries {
                        op_boundary();
                    }
                });
            }
        }
    }

    /// split_frontier covers the tree: per-subtree DFS explorations sum
    /// to exactly the serial run count, and replaying the subtrees in
    /// index order reproduces the serial schedule sequence.
    #[test]
    fn split_frontier_partitions_runs() {
        let config = Config::exhaustive().with_por(false).with_split_depth(3);
        let serial_schedules = {
            let mut v = Vec::new();
            explore(&config, boundary_setup(2, 2), |run| {
                v.push(run.schedule.clone());
                ControlFlow::Continue(())
            });
            v
        };
        let tasks = split_frontier(&config, boundary_setup(2, 2));
        assert!(tasks.len() > 1, "depth 3 must split this tree");
        let mut combined = Vec::new();
        for task in &tasks {
            let mut sub_config = config.clone();
            sub_config.strategy = StrategyKind::PrefixDfs {
                prefix: task.prefix.clone(),
                sleep: task.sleep.clone(),
            };
            explore(&sub_config, boundary_setup(2, 2), |run| {
                combined.push(run.schedule.clone());
                ControlFlow::Continue(())
            });
        }
        assert_eq!(combined, serial_schedules);
    }

    /// Parallel exploration merges per-subtree stats into exactly the
    /// serial totals, for any worker count.
    #[test]
    fn explore_parallel_matches_serial_stats() {
        let config = Config::exhaustive().with_por(false).with_split_depth(3);
        let serial = count_runs(&config, boundary_setup(2, 2));
        let tasks = split_frontier(&config, boundary_setup(2, 2));
        for workers in [1, 2, 4] {
            let stats = explore_parallel(workers, &tasks, |task, _cancel| {
                let mut sub_config = config.clone();
                sub_config.strategy = StrategyKind::PrefixDfs {
                    prefix: task.prefix.clone(),
                    sleep: task.sleep.clone(),
                };
                explore(&sub_config, boundary_setup(2, 2), |_| {
                    ControlFlow::Continue(())
                })
            });
            assert_eq!(stats.runs, serial.runs, "workers = {workers}");
            assert_eq!(stats.complete, serial.complete);
            assert_eq!(stats.total_steps, serial.total_steps);
            assert_eq!(stats.max_schedule_len, serial.max_schedule_len);
        }
    }

    /// POR composes with the frontier split: workers inherit the frontier
    /// sleep sets through [`SubtreeTask::sleep`], the parallel exploration
    /// still covers both orders of a conflict, and it never explores more
    /// schedules than the full (POR-off) enumeration.
    #[test]
    fn split_frontier_with_por_covers_conflicts() {
        use crate::ids::ObjId;
        fn conflict_setup() -> impl FnMut(&mut Execution) {
            |ex: &mut Execution| {
                for _ in 0..2 {
                    ex.spawn(|| {
                        crate::runtime::schedule(ObjId(3));
                        crate::runtime::schedule(ObjId(3));
                    });
                }
            }
        }
        let config = Config::exhaustive().with_split_depth(2);
        let serial = count_runs(&config, conflict_setup());
        let tasks = split_frontier(&config, conflict_setup());
        let stats = explore_parallel(2, &tasks, |task, _cancel| {
            let mut sub = config.clone();
            sub.strategy = StrategyKind::PrefixDfs {
                prefix: task.prefix.clone(),
                sleep: task.sleep.clone(),
            };
            explore(&sub, conflict_setup(), |_| ControlFlow::Continue(()))
        });
        let full = count_runs(&config.clone().with_por(false), conflict_setup());
        // The frontier region is fully expanded (sleep-only POR), so the
        // parallel exploration is a superset of the serial SDPOR one —
        // but still a reduction of the full enumeration.
        assert!(stats.complete >= serial.complete, "parallel covers serial");
        assert!(
            stats.runs <= full.runs,
            "parallel POR ({}) must not exceed full enumeration ({})",
            stats.runs,
            full.runs
        );
        assert!(serial.runs < full.runs, "POR must reduce this workload");
    }

    /// Cancellation: reporting a violation in subtree k skips every task
    /// after k but never the tasks before it.
    #[test]
    fn parallel_cancel_skips_later_subtrees_only() {
        let cancel = ParallelCancel::new();
        assert_eq!(cancel.winner(), None);
        assert!(!cancel.should_skip(0));
        cancel.report(5);
        cancel.report(7); // later report of a later subtree: ignored
        assert_eq!(cancel.winner(), Some(5));
        assert!(!cancel.should_skip(4));
        assert!(!cancel.should_skip(5), "the winner itself keeps running");
        assert!(cancel.should_skip(6));
        cancel.report(2); // an earlier subtree wins retroactively
        assert_eq!(cancel.winner(), Some(2));
    }

    #[test]
    fn explore_parallel_skips_tasks_after_reported_violation() {
        let tasks: Vec<SubtreeTask> = (0..6)
            .map(|i| SubtreeTask {
                index: i,
                prefix: vec![i],
                sleep: vec![0],
            })
            .collect();
        let visited = std::sync::Mutex::new(Vec::new());
        // One worker processes tasks in order; a "violation" in subtree 2
        // must skip 3, 4 and 5.
        explore_parallel(1, &tasks, |task, cancel| {
            visited.lock().unwrap().push(task.index);
            if task.index == 2 {
                cancel.report(task.index);
            }
            ExploreStats::default()
        });
        assert_eq!(*visited.lock().unwrap(), vec![0, 1, 2]);
    }

    /// Every schedule point is accounted as either a fast-path inline
    /// continuation or a slot handoff, and forcing the fast path off moves
    /// all of them to handoffs without changing the exploration.
    #[test]
    fn fast_path_accounting_and_forced_slow_path() {
        let fast = count_runs(&Config::exhaustive().with_por(false), boundary_setup(2, 2));
        assert!(fast.fast_path_steps > 0, "DFS must hit the fast path");
        assert!(fast.handoffs > 0, "cross-thread switches remain handoffs");
        let slow = count_runs(
            &Config::exhaustive().with_por(false).with_fast_path(false),
            boundary_setup(2, 2),
        );
        assert_eq!(slow.fast_path_steps, 0, "forced off takes no fast path");
        assert_eq!(
            slow.handoffs,
            fast.fast_path_steps + fast.handoffs,
            "every skipped handoff reappears as a slot handoff"
        );
        assert_eq!(slow.runs, fast.runs);
        assert_eq!(slow.total_steps, fast.total_steps);
        assert_eq!(slow.complete, fast.complete);
    }

    /// A worker thread death surfaces as an error from `wait_acks` (with
    /// the worker named), not as a controller panic or a hang.
    #[test]
    fn wait_acks_reports_a_dead_worker() {
        let mut pool = Pool::new();
        pool.ensure(2);
        // Simulate a dying worker: shutdown makes worker 0's thread exit
        // without ever sending the ack the controller is waiting for.
        pool.workers[0].tx.send(Task::Shutdown).unwrap();
        let err = pool.wait_acks(1).unwrap_err();
        assert!(err.contains("worker thread 0 died"), "got: {err}");
    }

    /// Object registration outside any model context yields the pseudo id.
    #[test]
    fn register_object_outside_model() {
        assert_eq!(
            crate::runtime::register_object(),
            crate::events::AccessEvent::NO_OBJ
        );
    }

    /// choose_bool outside a model context is deterministically false.
    #[test]
    fn choose_bool_outside_model() {
        assert!(!crate::runtime::choose_bool());
    }

    /// The access log records boundaries with per-thread op indexes.
    #[test]
    fn access_log_records_op_indexes() {
        let config = Config::exhaustive().with_access_log(true).with_max_runs(1);
        let mut log = Vec::new();
        explore(
            &config,
            |ex| {
                ex.spawn(|| {
                    op_boundary();
                    op_boundary();
                });
            },
            |run| {
                log = run.access_log.clone();
                ControlFlow::Continue(())
            },
        );
        let boundaries: Vec<_> = log
            .iter()
            .filter(|e| e.kind == crate::events::AccessKind::OpBoundary)
            .collect();
        assert_eq!(boundaries.len(), 2);
        assert_eq!(boundaries[0].op_index, 0);
        assert_eq!(boundaries[1].op_index, 1);
    }

    /// Drives a full work-stealing exploration: one [`StealPool`],
    /// `workers` scoped threads, each running a single
    /// [`explore_with_strategy`] call with a task-streaming
    /// [`StealingStrategy`]. Returns the merged stats plus every run's
    /// (decisions, schedule), sorted into serial (lexicographic) order.
    #[allow(clippy::type_complexity)]
    fn explore_stealing<S>(
        config: &Config,
        workers: usize,
        setup_for: impl Fn() -> S + Sync,
    ) -> (ExploreStats, Vec<(Vec<usize>, Vec<Choice>)>)
    where
        S: FnMut(&mut Execution),
    {
        let pool = Arc::new(StealPool::new(workers));
        let merged = Mutex::new(ExploreStats::default());
        let runs = Mutex::new(Vec::new());
        let por = config.effective_por();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let pool = Arc::clone(&pool);
                let (merged, runs, setup_for) = (&merged, &runs, &setup_for);
                scope.spawn(move || {
                    let Some(strategy) =
                        StealingStrategy::claim_first(Arc::clone(&pool), w, por, None, None)
                    else {
                        return;
                    };
                    let mut local = Vec::new();
                    let stats =
                        explore_with_strategy(config, Box::new(strategy), setup_for(), |run| {
                            local.push((run.decisions.clone(), run.schedule.clone()));
                            ControlFlow::Continue(())
                        });
                    pool.finish_task(w);
                    merged.lock().unwrap().merge(&stats);
                    runs.lock().unwrap().append(&mut local);
                });
            }
        });
        let mut stats = merged.into_inner().unwrap();
        pool.export_stats(&mut stats);
        let mut runs = runs.into_inner().unwrap();
        runs.sort_by(|a, b| a.0.cmp(&b.0));
        (stats, runs)
    }

    /// Work stealing visits exactly the serial runs (POR off): same
    /// counts, same schedules, zero duplicated work, zero eager frontier
    /// replays — for any worker count.
    #[test]
    fn stealing_matches_serial_runs_por_off() {
        let config = Config::exhaustive().with_por(false);
        let mut serial = Vec::new();
        let serial_stats = explore(&config, boundary_setup(2, 3), |run| {
            serial.push((run.decisions.clone(), run.schedule.clone()));
            ControlFlow::Continue(())
        });
        for workers in [1, 2, 4] {
            let (stats, runs) = explore_stealing(&config, workers, || boundary_setup(2, 3));
            assert_eq!(stats.runs, serial_stats.runs, "workers = {workers}");
            assert_eq!(stats.complete, serial_stats.complete);
            assert_eq!(stats.total_steps, serial_stats.total_steps);
            assert_eq!(stats.frontier_replays, 0, "stealing never replays eagerly");
            assert!(
                stats.steal_replays <= stats.steals,
                "replays ({}) must not exceed steals ({})",
                stats.steal_replays,
                stats.steals
            );
            assert!(
                stats.steals <= stats.splits,
                "steals ({}) must not exceed splits ({})",
                stats.steals,
                stats.splits
            );
            assert_eq!(runs, serial, "workers = {workers}");
        }
    }

    /// With more workers than tasks-at-start, idle workers flag a victim
    /// and actual steals happen; the partition stays exact. Whether a
    /// steal occurs depends on OS scheduling (on one core the first
    /// worker can drain the whole tree before the second is scheduled),
    /// so the run retries until one is observed — the partition
    /// invariants must hold on every attempt.
    #[test]
    fn stealing_actually_steals_on_a_big_tree() {
        let config = Config::exhaustive().with_por(false);
        let serial = count_runs(&config, boundary_setup(2, 4));
        let mut stole = false;
        for _ in 0..50 {
            let (stats, runs) = explore_stealing(&config, 2, || boundary_setup(2, 4));
            assert_eq!(stats.runs, serial.runs);
            assert!(stats.splits >= stats.steals);
            let mut decisions: Vec<_> = runs.into_iter().map(|(d, _)| d).collect();
            let before = decisions.len();
            decisions.dedup();
            assert_eq!(decisions.len(), before, "no run explored twice");
            if stats.steals > 0 {
                stole = true;
                break;
            }
        }
        assert!(stole, "a 252-run tree must get split within 50 attempts");
    }

    /// POR composes with stealing: split points are promoted to full
    /// expansion, so the parallel exploration covers at least the serial
    /// SDPOR schedules while staying a reduction of the full enumeration.
    #[test]
    fn stealing_with_por_covers_conflicts() {
        use crate::ids::ObjId;
        fn conflict_setup() -> impl FnMut(&mut Execution) {
            |ex: &mut Execution| {
                for _ in 0..2 {
                    ex.spawn(|| {
                        crate::runtime::schedule(ObjId(3));
                        crate::runtime::schedule(ObjId(3));
                    });
                }
            }
        }
        let config = Config::exhaustive();
        let serial = count_runs(&config, conflict_setup());
        let full = count_runs(&config.clone().with_por(false), conflict_setup());
        for workers in [2, 4] {
            let (stats, runs) = explore_stealing(&config, workers, conflict_setup);
            assert!(
                stats.complete >= serial.complete,
                "parallel covers serial (workers = {workers})"
            );
            assert!(
                stats.runs <= full.runs,
                "parallel POR ({}) must not exceed full enumeration ({})",
                stats.runs,
                full.runs
            );
            let mut decisions: Vec<_> = runs.into_iter().map(|(d, _)| d).collect();
            let before = decisions.len();
            decisions.dedup();
            assert_eq!(decisions.len(), before, "no run explored twice");
        }
    }

    /// A poisoned pool releases a worker parked waiting for work instead
    /// of leaving it waiting forever (the shutdown-hardening regression).
    #[test]
    fn poisoned_pool_releases_parked_workers() {
        let pool = Arc::new(StealPool::new(2));
        let root = pool.claim(0).expect("root task");
        assert!(!root.stolen);
        let parked = std::thread::spawn({
            let pool = Arc::clone(&pool);
            // Worker 1 parks: the queue is empty but worker 0 is active.
            move || pool.claim(1)
        });
        // Give the peer a moment to actually park, then poison.
        std::thread::sleep(Duration::from_millis(5));
        pool.poison();
        assert!(parked.join().unwrap().is_none(), "poison unparks the peer");
    }

    /// A worker panicking mid-exploration poisons the pool on the way
    /// out, so peers exit rather than deadlock on its never-finished task.
    #[test]
    fn panicking_worker_poisons_instead_of_deadlocking() {
        let pool = Arc::new(StealPool::new(2));
        std::thread::scope(|scope| {
            let crasher = scope.spawn(|| {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let _task = pool.claim(0).expect("root task");
                    panic!("worker crashed mid-steal");
                }));
                if result.is_err() {
                    pool.poison();
                }
            });
            let peer = scope.spawn(|| pool.claim(1));
            assert!(peer.join().unwrap().is_none(), "peer exits, not deadlocks");
            crasher.join().unwrap();
        });
    }

    /// LexCancel keeps the lexicographically least violation and skips
    /// exactly the runs and subtrees after it in serial order.
    #[test]
    fn lex_cancel_orders_by_decision_vector() {
        let cancel = LexCancel::new();
        assert!(!cancel.should_skip(&[9, 9]));
        cancel.report(&[1, 0]);
        assert!(cancel.should_skip(&[1, 1]));
        assert!(!cancel.should_skip(&[1, 0]), "the winner itself runs");
        assert!(!cancel.should_skip(&[0, 9]), "earlier runs keep running");
        assert!(cancel.should_skip(&[1, 0, 0]), "extensions come after");
        // A better (earlier) violation replaces the winner …
        cancel.report(&[0, 5]);
        assert_eq!(cancel.winner(), Some(vec![0, 5]));
        // … and a worse one does not.
        cancel.report(&[2, 0]);
        assert_eq!(cancel.winner(), Some(vec![0, 5]));
        // Subtrees: skipped only when every run in them is after the
        // winner.
        assert!(!cancel.should_skip_subtree(&[0]), "contains the winner");
        assert!(cancel.should_skip_subtree(&[0, 5]), "only later runs left");
        assert!(cancel.should_skip_subtree(&[1]));
        assert!(!cancel.should_skip_subtree(&[]), "the root always runs");
    }
}
