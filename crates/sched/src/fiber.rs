//! Stackful-coroutine execution backend: virtual threads as *fibers* on
//! the exploring OS thread.
//!
//! Under [`Backend::Fibers`](crate::Backend) a baton handoff is a direct
//! userspace stack switch — save the callee-saved registers and a resume
//! address on the outgoing stack, swap `rsp`, pop into the incoming
//! context. No park/unpark, no kernel transition, no futex: the handoff
//! costs tens of nanoseconds instead of the ~0.9µs a one-token parker
//! needs on a single core. The schedule *point* (step accounting, POR
//! footprint settlement, enabled-set and livelock checks, strategy
//! consultation, decision recording) is shared with the OS-thread backend
//! and executes unchanged, so schedules, histories, sleep sets, and
//! frontier partitions are byte-identical across backends.
//!
//! # Context switch
//!
//! [`raw_switch`] is ~10 instructions of stable inline asm (x86_64 SysV):
//! push `rbp`/`rbx` and the resume address, store `rsp` into the outgoing
//! save slot, load the incoming `rsp`, `ret`. All other registers are
//! declared clobbered, so the compiler spills what it needs around the
//! switch. One argument rides across the switch in `rdi`: for a resumed
//! fiber it is the wake token ([`ARG_RUN`]/[`ARG_ABORT`], the fiber-world
//! mirror of [`Wake`](crate::runtime)); for a first entry it is the
//! [`FiberRt`] pointer — `rdi` is also the first SysV argument register,
//! so the crafted stack can `ret` straight into the `extern "C"` entry
//! thunk.
//!
//! # Stack lifecycle
//!
//! Stacks are `mmap`ed (raw syscalls — no libc dependency) with a
//! `PROT_NONE` guard page at the low end, recycled across the millions of
//! runs of an exploration by a [`FiberPool`]: a fiber keeps its stack
//! across runs and only re-crafts the entry frame. A soft length check at
//! every schedule point aborts the run with a clear diagnostic well
//! before the guard page; the guard page itself is the memory-corruption
//! backstop for overflow *between* schedule points.
//!
//! # Arch support and fallback
//!
//! The switch is implemented for x86_64 Linux. Everywhere else (and with
//! the `fibers` cargo feature disabled) [`supported`] is `false` and
//! [`Backend::Fibers`](crate::Backend) degrades to OS threads. Native
//! passthrough mode ([`crate::native`]) always uses real OS threads:
//! its blocking operations must block a real thread.

/// Whether the fiber backend is implemented for this build (x86_64 Linux
/// with the `fibers` cargo feature enabled).
pub const fn supported() -> bool {
    cfg!(all(
        feature = "fibers",
        target_arch = "x86_64",
        target_os = "linux"
    ))
}

#[cfg(all(feature = "fibers", target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    use crate::events::AccessKind;
    use crate::ids::ThreadId;
    use crate::runtime::{panic_message, set_tls_tid, Abort, Shared, Wake};
    use crate::state::{RunOutcome, Status};

    /// Wake token carried across a switch into a resumed fiber: proceed.
    const ARG_RUN: usize = 0;
    /// Wake token carried across a switch into a resumed fiber: the run is
    /// over, unwind (mirror of [`Wake::Abort`]).
    const ARG_ABORT: usize = 1;

    /// Pseudo fiber id of the controller context (the exploring OS
    /// thread's own stack). Distinct from the runtime's pseudo thread ids.
    const CONTROLLER: usize = usize::MAX - 2;

    const PAGE: usize = 4096;

    /// Bytes of usable stack that must remain at a schedule point; less
    /// than this aborts the run with a diagnostic. Sized so the panic
    /// formatting and unwinding triggered by the diagnostic itself still
    /// fit on the fiber stack.
    const RED_ZONE: usize = 32 * 1024;

    // ---- raw Linux syscalls (no libc dependency) ----

    unsafe fn sys_mmap_anon(len: usize) -> usize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 9usize as isize => ret, // mmap
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") 0x3usize,  // PROT_READ | PROT_WRITE
            in("r10") 0x22usize, // MAP_PRIVATE | MAP_ANONYMOUS
            in("r8") -1i64,
            in("r9") 0usize,
            out("rcx") _,
            out("r11") _,
            options(nostack, preserves_flags),
        );
        assert!(
            ret > 0,
            "lineup-sched: mmap of a fiber stack failed ({ret})"
        );
        ret as usize
    }

    unsafe fn sys_mprotect_none(addr: usize, len: usize) {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 10usize as isize => ret, // mprotect
            in("rdi") addr,
            in("rsi") len,
            in("rdx") 0usize, // PROT_NONE
            out("rcx") _,
            out("r11") _,
            options(nostack, preserves_flags),
        );
        assert!(
            ret == 0,
            "lineup-sched: mprotect of a guard page failed ({ret})"
        );
    }

    unsafe fn sys_munmap(addr: usize, len: usize) {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") 11usize as isize => ret, // munmap
            in("rdi") addr,
            in("rsi") len,
            out("rcx") _,
            out("r11") _,
            options(nostack, preserves_flags),
        );
        debug_assert!(ret == 0, "munmap failed ({ret})");
    }

    /// One mmap'ed fiber stack: `[guard page][usable stack ...top]`.
    struct Stack {
        base: usize,
        total: usize,
    }

    impl Stack {
        fn new(usable: usize) -> Stack {
            let usable = usable.max(PAGE).div_ceil(PAGE) * PAGE;
            let total = usable + PAGE;
            unsafe {
                let base = sys_mmap_anon(total);
                sys_mprotect_none(base, PAGE); // guard page at the low end
                Stack { base, total }
            }
        }

        /// Lowest usable address (just above the guard page).
        fn usable_low(&self) -> usize {
            self.base + PAGE
        }

        /// One past the highest usable address.
        fn top(&self) -> usize {
            self.base + self.total
        }

        fn usable_len(&self) -> usize {
            self.total - PAGE
        }
    }

    impl Drop for Stack {
        fn drop(&mut self) {
            unsafe { sys_munmap(self.base, self.total) };
        }
    }

    /// A free list of fiber stacks, so explorations recycle stacks across
    /// runs (and across thread-count changes) instead of re-`mmap`ing.
    struct FiberPool {
        free: Vec<Stack>,
        usable: usize,
    }

    impl FiberPool {
        fn new(usable: usize) -> FiberPool {
            FiberPool {
                free: Vec::new(),
                usable,
            }
        }

        fn acquire(&mut self) -> Stack {
            self.free.pop().unwrap_or_else(|| Stack::new(self.usable))
        }

        fn release(&mut self, stack: Stack) {
            self.free.push(stack);
        }
    }

    /// One virtual thread's fiber: its (recycled) stack, its saved stack
    /// pointer while suspended, and its per-run lifecycle flags.
    struct Fiber {
        stack: Option<Stack>,
        /// Saved `rsp` while the fiber is suspended (undefined while it
        /// runs or before its first entry).
        sp: usize,
        /// The fiber has been entered this run (its stack holds a live
        /// context until `done`).
        started: bool,
        /// The fiber's entry thunk has completed (or unwound); its stack
        /// holds nothing live and must not be resumed.
        done: bool,
        /// The virtual thread's closure, taken at first entry; dropped
        /// without entering when the run ends before the fiber starts
        /// (the OS backend's parked workers drop it by unwinding).
        body: Option<Box<dyn FnOnce() + Send>>,
    }

    impl Fiber {
        fn new() -> Fiber {
            Fiber {
                stack: None,
                sp: 0,
                started: false,
                done: false,
                body: None,
            }
        }
    }

    /// Per-exploration fiber runtime: the fibers of the current run, the
    /// controller's saved context, and the stack pool. Owned by the
    /// exploring (controller) OS thread; parallel workers each own their
    /// own `FiberRt`, so `explore_parallel` composes.
    pub struct FiberRt {
        shared: Arc<Shared>,
        fibers: Vec<Fiber>,
        /// The controller's saved `rsp` while a fiber runs.
        controller_sp: usize,
        /// The fiber currently executing ([`CONTROLLER`] between runs).
        current: usize,
        pool: FiberPool,
    }

    thread_local! {
        /// The fiber runtime active on this OS thread, null outside a
        /// fiber-backend run. A raw pointer (not a `RefCell`) because the
        /// borrow would otherwise be held *across* a stack switch, and the
        /// resumed fiber — same OS thread, same TLS — must be able to
        /// access it again.
        static ACTIVE: Cell<*mut FiberRt> = const { Cell::new(std::ptr::null_mut()) };
    }

    /// The active fiber runtime and the id of the fiber executing on it,
    /// or `None` when the caller is the controller (or no fiber run is
    /// active on this OS thread).
    pub(crate) fn fiber_ctx() -> Option<(*mut FiberRt, usize)> {
        let rt = ACTIVE.with(Cell::get);
        if rt.is_null() {
            return None;
        }
        let cur = unsafe { (*rt).current };
        (cur != CONTROLLER).then_some((rt, cur))
    }

    /// The shared runtime state of the active fiber runtime.
    ///
    /// # Safety
    ///
    /// `rt` must be the pointer returned by [`fiber_ctx`] on this thread;
    /// the reference must not outlive the enclosing run.
    pub(crate) unsafe fn shared_of<'a>(rt: *mut FiberRt) -> &'a Shared {
        &*Arc::as_ptr(&(*rt).shared)
    }

    /// Aborts the run with a clear diagnostic when the calling fiber is
    /// within [`RED_ZONE`] of its stack limit. Called at every fiber
    /// schedule point; overflow *between* schedule points is caught by the
    /// guard page instead (a fault, but never silent corruption).
    pub(crate) fn check_stack(rt: *mut FiberRt, me: usize) {
        let probe = 0u8;
        let sp = std::ptr::addr_of!(probe) as usize;
        let f = unsafe { &(&(*rt).fibers)[me] };
        if let Some(stack) = &f.stack {
            if sp < stack.usable_low() + RED_ZONE {
                panic!(
                    "fiber stack overflow on virtual thread {me}: {} bytes of \
                     {} used at a schedule point; raise Config::fiber_stack_size",
                    stack.top().saturating_sub(sp),
                    stack.usable_len(),
                );
            }
        }
    }

    /// The userspace context switch. Saves `rbp`, `rbx`, and a resume
    /// address on the current stack, publishes `rsp` through `save`, then
    /// installs `restore` and `ret`s into the target context. Returns —
    /// when some later switch restores this context — the `arg` value the
    /// resumer passed.
    ///
    /// `rbp`/`rbx` are pushed and popped manually (LLVM reserves them as
    /// inline-asm operands); everything else is declared clobbered, either
    /// explicitly or via `clobber_abi("C")` (which covers the SSE state),
    /// so the compiler spills any live register around the switch.
    ///
    /// # Safety
    ///
    /// `restore` must be a stack pointer previously published through
    /// `save` by this function, or a crafted entry frame: a 16-byte-
    /// aligned slot holding the address of an `extern "C" fn(usize) -> !`
    /// (the `ret` then enters the thunk with `rsp % 16 == 8`, exactly the
    /// SysV call-entry state, and `arg` in `rdi`, the first argument
    /// register).
    #[inline(never)]
    unsafe fn raw_switch(save: *mut usize, restore: usize, arg: usize) -> usize {
        let out: usize;
        core::arch::asm!(
            "push rbp",
            "push rbx",
            "lea rax, [rip + 2f]",
            "push rax",
            "mov [rsi], rsp",
            "mov rsp, rdx",
            "ret",
            "2:",
            "pop rbx",
            "pop rbp",
            inout("rsi") save => _,
            inout("rdx") restore => _,
            inout("rdi") arg => out,
            out("rax") _,
            out("rcx") _,
            out("r8") _,
            out("r9") _,
            out("r10") _,
            out("r11") _,
            out("r12") _,
            out("r13") _,
            out("r14") _,
            out("r15") _,
            clobber_abi("C"),
        );
        out
    }

    /// Switches from the context whose save slot is `from_sp` to `target`
    /// (a fiber id or [`CONTROLLER`]), starting the target fiber if it has
    /// not run yet. Returns the wake token passed by whichever context
    /// later resumes `from_sp`.
    unsafe fn switch_to(
        rt: *mut FiberRt,
        from_sp: *mut usize,
        target: usize,
        wake: usize,
    ) -> usize {
        (*rt).current = target;
        let (restore, arg);
        if target == CONTROLLER {
            restore = (*rt).controller_sp;
            arg = wake;
        } else {
            // Instrumented primitives read the current virtual-thread id
            // from the runtime TLS; all fibers share one OS thread, so the
            // switch must retarget it.
            set_tls_tid(target);
            let f = &mut (&mut (*rt).fibers)[target];
            if f.started {
                restore = f.sp;
                arg = wake;
            } else {
                f.started = true;
                if f.stack.is_none() {
                    f.stack = Some((*rt).pool.acquire());
                }
                let stack = f.stack.as_ref().expect("just ensured");
                // Entry frame: the thunk address at a 16-aligned slot, so
                // `ret` enters it with the SysV call-entry alignment.
                let slot = (stack.top() - 16) & !15;
                let entry: extern "C" fn(usize) -> ! = fiber_entry;
                *(slot as *mut usize) = entry as *const () as usize;
                restore = slot;
                arg = rt as usize;
            }
        }
        raw_switch(from_sp, restore, arg)
    }

    /// The baton handoff under the fiber backend: switches from fiber `me`
    /// to fiber `next`. The caller has already made (and recorded) the
    /// scheduling decision and released the state lock. A self-handoff
    /// (forced slow path with the baton kept) is a no-op beyond the
    /// accounting the caller already did — there is no park/unpark pair to
    /// mirror in userspace.
    pub(crate) unsafe fn fiber_handoff(rt: *mut FiberRt, me: usize, next: usize) -> Wake {
        if next == me {
            return Wake::Run;
        }
        let from_sp: *mut usize = std::ptr::addr_of_mut!((&mut (*rt).fibers)[me].sp);
        match switch_to(rt, from_sp, next, ARG_RUN) {
            ARG_ABORT => Wake::Abort,
            _ => Wake::Run,
        }
    }

    /// First-entry thunk of every fiber, entered via `ret` from
    /// [`raw_switch`] with the [`FiberRt`] pointer as its argument.
    /// Mirrors `run_virtual_thread` of the OS backend: mark the thread
    /// runnable and started, run the body, mark it finished, pass the
    /// baton (or end the run). User panics and [`Abort`] unwinds are
    /// caught here, exactly like the worker pool's `catch_unwind`.
    ///
    /// Never returns: the final act is a switch to the successor fiber or
    /// the controller, with the fiber marked `done` so nothing resumes
    /// this stack until it is re-crafted for the next run. Everything
    /// droppable is dropped before that final switch, so abandoning the
    /// suspended frames leaks nothing.
    extern "C" fn fiber_entry(arg: usize) -> ! {
        let rt = arg as *mut FiberRt;
        unsafe {
            let me = (*rt).current;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let body = (&mut (*rt).fibers)[me]
                    .body
                    .take()
                    .expect("fiber body present");
                {
                    let shared = shared_of(rt);
                    let mut st = shared.state.lock().unwrap();
                    st.set_status(me, Status::Runnable);
                    st.note_point(me, Some(AccessKind::ThreadStart));
                    // Keep the baton: proceed into the closure.
                }
                body();
            }));
            let target = match outcome {
                Ok(()) => finish_fiber(rt, me),
                Err(payload) => {
                    if payload.downcast_ref::<Abort>().is_none() {
                        record_fiber_panic(rt, me, &*payload);
                    }
                    CONTROLLER
                }
            };
            (&mut (*rt).fibers)[me].done = true;
            let from_sp: *mut usize = std::ptr::addr_of_mut!((&mut (*rt).fibers)[me].sp);
            switch_to(rt, from_sp, target, ARG_RUN);
            unreachable!("a finished fiber is never resumed");
        }
    }

    /// The finishing fiber's baton pass (the OS backend's
    /// `run_virtual_thread` tail): mark finished, let the scheduler pick a
    /// successor, and name the switch target — a fiber if the run
    /// continues, the controller if it is over.
    unsafe fn finish_fiber(rt: *mut FiberRt, me: usize) -> usize {
        let shared = shared_of(rt);
        let mut st = shared.state.lock().unwrap();
        st.set_status(me, Status::Finished);
        st.note_point(me, Some(AccessKind::ThreadFinish));
        if st.pick_next(false) {
            st.handoffs += 1;
            st.current.expect("a thread was scheduled")
        } else {
            CONTROLLER
        }
    }

    /// Records a user panic on a fiber: the state mutations of the OS
    /// backend's `handle_user_panic`, without the wakeup-slot teardown
    /// (no OS thread is parked under the fiber backend — the controller is
    /// resumed by a stack switch instead).
    unsafe fn record_fiber_panic(
        rt: *mut FiberRt,
        me: usize,
        payload: &(dyn std::any::Any + Send),
    ) {
        let message = panic_message(payload);
        let shared = shared_of(rt);
        let mut st = shared.state.lock().unwrap();
        st.set_status(me, Status::Finished);
        if st.run_over.is_none() {
            st.run_over = Some(RunOutcome::Panicked {
                thread: ThreadId(me),
                message,
            });
        }
        st.abort = true;
        st.current = None;
    }

    impl std::fmt::Debug for FiberRt {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("FiberRt")
                .field("fibers", &self.fibers.len())
                .field("current", &self.current)
                .finish_non_exhaustive()
        }
    }

    impl FiberRt {
        /// Creates the fiber runtime for one exploration over `shared`,
        /// with `stack_size` usable bytes per fiber stack.
        pub(crate) fn new(shared: Arc<Shared>, stack_size: usize) -> FiberRt {
            FiberRt {
                shared,
                fibers: Vec::new(),
                controller_sp: 0,
                current: CONTROLLER,
                pool: FiberPool::new(stack_size),
            }
        }

        /// Installs the bodies of one run, recycling fiber slots (and
        /// their stacks) from the previous run.
        pub(crate) fn begin_run(&mut self, bodies: Vec<Box<dyn FnOnce() + Send>>) {
            while self.fibers.len() > bodies.len() {
                let f = self.fibers.pop().expect("non-empty");
                if let Some(stack) = f.stack {
                    self.pool.release(stack);
                }
            }
            while self.fibers.len() < bodies.len() {
                self.fibers.push(Fiber::new());
            }
            for (f, body) in self.fibers.iter_mut().zip(bodies) {
                debug_assert!(!f.started && !f.done && f.body.is_none());
                f.body = Some(body);
                f.sp = 0;
            }
        }

        /// Executes one run to completion: switches into the first
        /// scheduled fiber and, once some fiber ends the run and switches
        /// back, unwinds every started-but-unfinished fiber (running its
        /// destructors — the mirror of the OS backend's `Abort` tokens).
        pub(crate) fn run(&mut self, first: usize) {
            let rt: *mut FiberRt = self;
            unsafe {
                ACTIVE.with(|a| a.set(rt));
                let sp: *mut usize = std::ptr::addr_of_mut!((*rt).controller_sp);
                switch_to(rt, sp, first, ARG_RUN);
                loop {
                    let stale = (*rt).fibers.iter().position(|f| f.started && !f.done);
                    let Some(t) = stale else { break };
                    let sp: *mut usize = std::ptr::addr_of_mut!((*rt).controller_sp);
                    switch_to(rt, sp, t, ARG_ABORT);
                }
                (*rt).current = CONTROLLER;
                ACTIVE.with(|a| a.set(std::ptr::null_mut()));
            }
        }

        /// Clears the per-run fiber state, dropping the bodies of fibers
        /// that never started. Stacks stay attached for the next run.
        pub(crate) fn end_run(&mut self) {
            for f in &mut self.fibers {
                f.body = None;
                f.started = false;
                f.done = false;
                f.sp = 0;
            }
        }
    }
}

#[cfg(not(all(feature = "fibers", target_arch = "x86_64", target_os = "linux")))]
mod imp {
    use std::sync::Arc;

    use crate::runtime::{Shared, Wake};

    /// Fallback fiber runtime for targets without fiber support: never
    /// instantiated, because [`Backend::effective`](crate::Backend)
    /// degrades every fiber request to OS threads first.
    pub struct FiberRt {
        _never: std::convert::Infallible,
    }

    impl std::fmt::Debug for FiberRt {
        fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self._never {}
        }
    }

    pub(crate) fn fiber_ctx() -> Option<(*mut FiberRt, usize)> {
        None
    }

    pub(crate) unsafe fn shared_of<'a>(_rt: *mut FiberRt) -> &'a Shared {
        unreachable!("fiber backend is not supported on this target")
    }

    pub(crate) fn check_stack(_rt: *mut FiberRt, _me: usize) {
        unreachable!("fiber backend is not supported on this target")
    }

    pub(crate) unsafe fn fiber_handoff(_rt: *mut FiberRt, _me: usize, _next: usize) -> Wake {
        unreachable!("fiber backend is not supported on this target")
    }

    impl FiberRt {
        pub(crate) fn new(_shared: Arc<Shared>, _stack_size: usize) -> FiberRt {
            unreachable!("fiber backend is not supported on this target")
        }

        pub(crate) fn begin_run(&mut self, _bodies: Vec<Box<dyn FnOnce() + Send>>) {
            match self._never {}
        }

        pub(crate) fn run(&mut self, _first: usize) {
            match self._never {}
        }

        pub(crate) fn end_run(&mut self) {
            match self._never {}
        }
    }
}

pub use imp::FiberRt;
pub(crate) use imp::{check_stack, fiber_ctx, fiber_handoff, shared_of};
