//! Identifiers for virtual threads and model objects.

use std::fmt;

/// Identifier of a virtual thread within one exploration.
///
/// Thread ids are dense indexes `0..n` assigned in spawn order, so they are
/// stable across the re-executions performed by the stateless explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Returns the dense index of this thread.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a model object (an instrumented atomic, mutex, monitor, …).
///
/// Object ids are dense indexes assigned in registration order within one
/// execution; because executions are deterministic given the schedule, the
/// same object receives the same id in every replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Returns the dense index of this object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_order() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert!(ThreadId(0) < ThreadId(1));
        assert_eq!(ThreadId(2).index(), 2);
    }

    #[test]
    fn obj_id_display_and_order() {
        assert_eq!(ObjId(7).to_string(), "o7");
        assert!(ObjId(0) < ObjId(9));
        assert_eq!(ObjId(4).index(), 4);
    }
}
