//! A stateless model checker for Rust closures, serving as the substrate of
//! the Line-Up linearizability checker (Burckhardt, Dern, Musuvathi, Tan:
//! *Line-Up: A Complete and Automatic Linearizability Checker*, PLDI 2010).
//!
//! The paper builds Line-Up on top of the CHESS stateless model checker and
//! treats it "essentially as a black box" (§4). This crate provides the same
//! black box for Rust code:
//!
//! * a fixed set of *virtual threads* run real Rust closures, but only one
//!   thread runs at a time and every access to an instrumented primitive
//!   (see the `lineup-sync` crate) is a *schedule point* at which the
//!   scheduler may switch threads;
//! * an [`explore`] loop re-executes the same program and
//!   systematically enumerates all scheduling (and timeout) choices with a
//!   depth-first strategy, optionally bounded by a *preemption bound*
//!   (the CHESS heuristic, §4.3 of the paper);
//! * *fair scheduling* deprioritizes threads that yield in spin loops and
//!   detects fair livelocks, which the paper needs because "many of the
//!   concurrent data types use spin-loops for synchronization" (§4);
//! * a *serial-only* mode restricts context switches to operation
//!   boundaries, which Line-Up phase 1 uses to enumerate the sequential
//!   behaviors of a component without preempting threads inside operations;
//! * deadlocks, fair livelocks, and serial blocking produce *stuck* runs,
//!   from which Line-Up constructs the stuck histories of §2.3.
//!
//! # Example
//!
//! ```
//! use lineup_sched::{explore, Config, RunOutcome};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! // Two threads that each pass through one schedule point: the explorer
//! // enumerates both orders.
//! let config = Config::exhaustive();
//! let orders = Arc::new(AtomicUsize::new(0));
//! let orders2 = Arc::clone(&orders);
//! let stats = explore(
//!     &config,
//!     move |ex| {
//!         let o = Arc::clone(&orders2);
//!         ex.spawn(move || {
//!             lineup_sched::yield_point();
//!             o.fetch_add(1, Ordering::SeqCst);
//!         });
//!         ex.spawn(|| {
//!             lineup_sched::yield_point();
//!         });
//!     },
//!     |run| {
//!         assert_eq!(run.outcome, RunOutcome::Complete);
//!         std::ops::ControlFlow::Continue(())
//!     },
//! );
//! assert!(stats.runs >= 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod coverage;
pub mod events;
pub mod explorer;
pub mod fiber;
pub mod ids;
pub mod native;
pub mod por;
pub mod probe;
pub mod runtime;
pub mod state;
pub mod strategy;

pub use config::{Backend, Config, Mode, StrategyKind};
pub use coverage::{CoverageCounters, CoverageShared, CoverageStrategy, COVERAGE_MAP_BITS};
pub use events::{AccessEvent, AccessKind};
pub use explorer::{
    explore, explore_parallel, explore_with_strategy, split_frontier, AbandonConfirm, Execution,
    ExploreStats, LexCancel, ParallelCancel, RunResult, StealPool, StealSkip, StealTask,
    StealingStrategy, SubtreeTask,
};
pub use ids::{ObjId, ThreadId};
pub use native::{register_native_thread, NativeGuard, NativeOptions};
pub use por::{AccessIntent, VectorClock, MAX_POR_THREADS};
pub use probe::Probe;
pub use runtime::{
    block_current, choose_bool, current_thread, is_model_active, log_access, mark_history_event,
    op_boundary, register_object, schedule, schedule_access, unblock, yield_point, BlockResult,
};
pub use state::{BlockKind, RunOutcome};
pub use strategy::{Choice, StolenSubtree, Strategy};
