//! Native passthrough mode: run instrumented code on real OS threads.
//!
//! The `lineup-sync` primitives are written against the runtime API of
//! this crate ([`schedule`](crate::schedule), [`block_current`]
//! (crate::block_current), [`unblock`](crate::unblock), …). Under the
//! model checker those calls cooperate with the baton-passing scheduler;
//! outside any execution they are no-ops — except that blocking is
//! impossible (every OS thread shares one pseudo thread id, so ownership
//! keys collide, and [`block_current`](crate::block_current) panics).
//!
//! Native mode fills that gap for *stress testing*: an OS thread that
//! registers itself with [`register_native_thread`] gets
//!
//! * a unique thread id (disjoint from the model's virtual-thread ids), so
//!   lock-ownership keys work under real contention;
//! * a real parker, so [`block_current`](crate::block_current) parks the
//!   OS thread and [`unblock`](crate::unblock) wakes it —
//!   [`BlockKind::Timed`] waits become real timed waits (see
//!   [`set_timed_wait`]);
//! * optional *yield injection*: a seeded per-thread RNG yields the OS
//!   thread at a fraction of schedule points, forcing interleavings that a
//!   single-core scheduler would otherwise never produce (the classic
//!   noise-maker technique of stress tools).
//!
//! Everything instrumented then compiles down to plain `std::sync`
//! behavior: the primitives' internal `std::sync::Mutex`es provide the
//! memory safety, and parking provides the blocking. Native executions are
//! *not* schedule-deterministic — they are the workload of the
//! `lineup-monitor` crate's stress runner, which records histories and
//! checks them after the fact.
//!
//! # Fidelity caveats
//!
//! Native mode approximates the model semantics at the margins: a timed
//! wait races against its wakeup in real time (the timeout duration is a
//! knob, not a scheduler choice), and a wakeup permit granted concurrently
//! with a timeout may survive as a stale permit that resumes the next wait
//! of that thread spuriously. The `lineup-sync` primitives re-check their
//! wait conditions in loops, so stale permits cost a retry, not
//! correctness of the primitives themselves.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::ids::ThreadId;
use crate::runtime::BlockResult;
use crate::state::BlockKind;

/// First thread id handed out to native threads. Far above any virtual
/// thread id (those are small indexes) and below the reserved setup and
/// outside pseudo ids (`usize::MAX`, `usize::MAX - 1`).
pub const NATIVE_TID_BASE: usize = usize::MAX / 2;

/// Default real duration of a [`BlockKind::Timed`] wait in native mode.
pub const DEFAULT_TIMED_WAIT: Duration = Duration::from_micros(50);

/// Nanoseconds a native [`BlockKind::Timed`] wait blocks before timing
/// out. Stored globally: the timeout models ".NET code passed some finite
/// timeout", and stress runs want it short so contended timed operations
/// actually exercise their timeout paths.
static TIMED_WAIT_NANOS: AtomicU64 = AtomicU64::new(DEFAULT_TIMED_WAIT.as_nanos() as u64);

/// Sets the real duration of native [`BlockKind::Timed`] waits.
pub fn set_timed_wait(duration: Duration) {
    let nanos = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
    TIMED_WAIT_NANOS.store(nanos, Ordering::Relaxed);
}

/// The real duration native [`BlockKind::Timed`] waits currently use.
pub fn timed_wait() -> Duration {
    Duration::from_nanos(TIMED_WAIT_NANOS.load(Ordering::Relaxed))
}

/// A permit-semantics parker (like `std::thread::park`, but with an
/// explicit token): an unpark before the park is not lost, it makes the
/// next park return immediately.
#[derive(Debug, Default)]
struct Parker {
    permit: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn park(&self, timeout: Option<Duration>) -> BlockResult {
        let mut permit = self.permit.lock().unwrap();
        match timeout {
            None => {
                while !*permit {
                    permit = self.cv.wait(permit).unwrap();
                }
                *permit = false;
                BlockResult::Resumed
            }
            Some(dur) => {
                let deadline = Instant::now() + dur;
                loop {
                    if *permit {
                        *permit = false;
                        return BlockResult::Resumed;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        // The permit check above ran under the lock, so a
                        // concurrent unpark either landed (Resumed) or
                        // will be consumed by this thread's next park.
                        return BlockResult::TimedOut;
                    }
                    let (g, _) = self.cv.wait_timeout(permit, deadline - now).unwrap();
                    permit = g;
                }
            }
        }
    }

    fn unpark(&self) {
        let mut permit = self.permit.lock().unwrap();
        *permit = true;
        self.cv.notify_all();
    }
}

/// Slot table mapping `tid - NATIVE_TID_BASE` to parkers. Slots are
/// reused through a free list so long stress campaigns do not grow the
/// table without bound.
#[derive(Default)]
struct Registry {
    slots: Vec<Option<Arc<Parker>>>,
    free: Vec<usize>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    slots: Vec::new(),
    free: Vec::new(),
});

struct NativeCtx {
    slot: usize,
    parker: Arc<Parker>,
    rng: u64,
    yield_chance: u32,
}

thread_local! {
    static NATIVE: RefCell<Option<NativeCtx>> = const { RefCell::new(None) };
}

/// Options for one native thread registration.
#[derive(Debug, Clone, Copy)]
pub struct NativeOptions {
    /// Seed of the per-thread yield-injection RNG. Give each thread of a
    /// stress run a distinct seed derived from the run's seed.
    pub seed: u64,
    /// Yield the OS thread at roughly one in `yield_chance` schedule
    /// points (`0` disables injection). On a single core this is what
    /// actually interleaves threads inside operations.
    pub yield_chance: u32,
}

impl Default for NativeOptions {
    fn default() -> Self {
        NativeOptions {
            seed: 0x9E37_79B9_7F4A_7C15,
            yield_chance: 0,
        }
    }
}

/// Registers the calling OS thread for native mode; the returned guard
/// unregisters it on drop. See the [module docs](self).
///
/// # Panics
///
/// Panics when the thread is already registered, or when called from
/// inside a model execution (virtual threads are already scheduled).
pub fn register_native_thread(options: NativeOptions) -> NativeGuard {
    assert!(
        !crate::runtime::has_model_ctx(),
        "lineup-sched: cannot register a native thread inside a model execution"
    );
    let parker = Arc::new(Parker::default());
    let slot = {
        let mut reg = REGISTRY.lock().unwrap();
        match reg.free.pop() {
            Some(i) => {
                reg.slots[i] = Some(Arc::clone(&parker));
                i
            }
            None => {
                reg.slots.push(Some(Arc::clone(&parker)));
                reg.slots.len() - 1
            }
        }
    };
    NATIVE.with(|n| {
        let mut n = n.borrow_mut();
        assert!(
            n.is_none(),
            "lineup-sched: thread is already registered for native mode"
        );
        *n = Some(NativeCtx {
            slot,
            parker,
            // xorshift64* state must be non-zero.
            rng: options.seed | 1,
            yield_chance: options.yield_chance,
        });
    });
    NativeGuard {
        tid: ThreadId(NATIVE_TID_BASE + slot),
        _not_send: std::marker::PhantomData,
    }
}

/// Guard of one native registration (see [`register_native_thread`]).
/// Unregisters the thread when dropped.
#[derive(Debug)]
pub struct NativeGuard {
    tid: ThreadId,
    // The guard must be dropped on the thread that registered.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl NativeGuard {
    /// The thread id under which this OS thread participates (the id
    /// primitives see through [`current_thread`](crate::current_thread)).
    pub fn thread_id(&self) -> ThreadId {
        self.tid
    }
}

impl Drop for NativeGuard {
    fn drop(&mut self) {
        NATIVE.with(|n| {
            if let Some(ctx) = n.borrow_mut().take() {
                let mut reg = REGISTRY.lock().unwrap();
                reg.slots[ctx.slot] = None;
                reg.free.push(ctx.slot);
            }
        });
    }
}

/// Whether a thread id lies in the native range (set off from virtual
/// thread ids and the reserved pseudo ids).
pub(crate) fn is_native_tid(tid: ThreadId) -> bool {
    tid.0 >= NATIVE_TID_BASE && tid.0 < usize::MAX - 1
}

/// The calling thread's native id, if registered.
pub(crate) fn current_native_tid() -> Option<ThreadId> {
    NATIVE.with(|n| {
        n.borrow()
            .as_ref()
            .map(|ctx| ThreadId(NATIVE_TID_BASE + ctx.slot))
    })
}

/// Native counterpart of [`block_current`](crate::block_current): parks
/// the calling OS thread. `None` when the thread is not registered.
pub(crate) fn block_native(kind: BlockKind) -> Option<BlockResult> {
    let parker = NATIVE.with(|n| n.borrow().as_ref().map(|ctx| Arc::clone(&ctx.parker)))?;
    let timeout = match kind {
        BlockKind::Untimed => None,
        BlockKind::Timed => Some(timed_wait()),
    };
    Some(parker.park(timeout))
}

/// Native counterpart of [`unblock`](crate::unblock): sets the target
/// thread's permit. Dispatched on the *target* id, so any thread —
/// registered or not — can wake a native thread. A no-op for slots that
/// have already been unregistered.
pub(crate) fn unblock_native(tid: ThreadId) {
    let slot = tid.0 - NATIVE_TID_BASE;
    let parker = {
        let reg = REGISTRY.lock().unwrap();
        reg.slots.get(slot).and_then(Clone::clone)
    };
    if let Some(p) = parker {
        p.unpark();
    }
}

/// Native schedule-point hook: yield injection. A plain schedule point
/// yields with probability `1/yield_chance`; an explicit yield
/// ([`yield_point`](crate::yield_point)) always yields the OS thread.
pub(crate) fn on_schedule_point(explicit_yield: bool) {
    let inject = NATIVE.with(|n| {
        let mut n = n.borrow_mut();
        match n.as_mut() {
            Some(ctx) if !explicit_yield => {
                ctx.yield_chance > 0 && next_u64(ctx).is_multiple_of(u64::from(ctx.yield_chance))
            }
            Some(_) => true,
            None => explicit_yield,
        }
    });
    if inject {
        std::thread::yield_now();
    }
}

/// Native counterpart of [`choose_bool`](crate::choose_bool): a seeded
/// random bool (environment nondeterminism is real in a stress run).
/// `None` when the thread is not registered.
pub(crate) fn choose_bool_native() -> Option<bool> {
    NATIVE.with(|n| n.borrow_mut().as_mut().map(|ctx| next_u64(ctx) & 1 == 1))
}

/// xorshift64*: tiny, seedable, good enough for yield injection.
fn next_u64(ctx: &mut NativeCtx) -> u64 {
    let mut x = ctx.rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    ctx.rng = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registration slots are process-global; tests that register threads
    /// serialize on this lock so slot-identity assertions are stable.
    static SLOT_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn registration_assigns_distinct_native_ids() {
        let _serial = SLOT_LOCK.lock().unwrap();
        let g = register_native_thread(NativeOptions::default());
        let here = g.thread_id();
        assert!(is_native_tid(here));
        assert_eq!(crate::current_thread(), here);
        let other = std::thread::spawn(|| {
            let g = register_native_thread(NativeOptions::default());
            g.thread_id()
        })
        .join()
        .unwrap();
        assert_ne!(here, other, "concurrent registrations get distinct ids");
        drop(g);
        assert!(
            !is_native_tid(crate::current_thread()),
            "dropping the guard unregisters"
        );
    }

    #[test]
    fn park_consumes_a_prior_unpark() {
        let p = Parker::default();
        p.unpark();
        assert_eq!(p.park(None), BlockResult::Resumed);
    }

    #[test]
    fn timed_park_times_out() {
        let p = Parker::default();
        assert_eq!(
            p.park(Some(Duration::from_micros(200))),
            BlockResult::TimedOut
        );
    }

    #[test]
    fn unblock_wakes_a_parked_native_thread() {
        let _serial = SLOT_LOCK.lock().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            let g = register_native_thread(NativeOptions::default());
            tx.send(g.thread_id()).unwrap();
            crate::block_current(BlockKind::Untimed)
        });
        let tid = rx.recv().unwrap();
        // Permit semantics: the wakeup may land before the park.
        crate::unblock(tid);
        assert_eq!(h.join().unwrap(), BlockResult::Resumed);
    }

    #[test]
    fn native_timed_block_times_out_without_wakeup() {
        let _serial = SLOT_LOCK.lock().unwrap();
        let h = std::thread::spawn(|| {
            let _g = register_native_thread(NativeOptions::default());
            crate::block_current(BlockKind::Timed)
        });
        assert_eq!(h.join().unwrap(), BlockResult::TimedOut);
    }

    #[test]
    fn slots_are_reused_after_unregistration() {
        let _serial = SLOT_LOCK.lock().unwrap();
        let first =
            std::thread::spawn(|| register_native_thread(NativeOptions::default()).thread_id())
                .join()
                .unwrap();
        let second =
            std::thread::spawn(|| register_native_thread(NativeOptions::default()).thread_id())
                .join()
                .unwrap();
        assert_eq!(first, second, "freed slot is handed out again");
    }

    #[test]
    fn timed_wait_is_configurable() {
        let original = timed_wait();
        set_timed_wait(Duration::from_millis(3));
        assert_eq!(timed_wait(), Duration::from_millis(3));
        set_timed_wait(original);
    }
}
