//! Dynamic partial-order reduction (sleep sets + happens-before
//! backtracking) for the phase-2 exploration.
//!
//! Two schedules that differ only in the order of *non-conflicting*
//! transitions are Mazurkiewicz-equivalent: they drive the program through
//! the same sequence of per-object states and produce the identical
//! call/return history, so Line-Up's phase 2 — which only needs the set of
//! *distinct* observations — can soundly explore one representative per
//! equivalence class. This module implements the two classic ingredients:
//!
//! * **Sleep sets** (Godefroid): after fully exploring thread `t` from a
//!   schedule point, `t` is put to sleep while the siblings are explored,
//!   and wakes only when an executed transition *conflicts* with `t`'s
//!   pending transition. A run whose every candidate is asleep is pruned
//!   ([`RunOutcome::Pruned`](crate::RunOutcome)).
//! * **DPOR backtracking** (Flanagan–Godefroid, POPL 2005): each run tracks
//!   happens-before with per-thread vector clocks; when a transition
//!   conflicts with an earlier, causally-unordered transition of another
//!   thread, the schedule point where that earlier transition was chosen
//!   gains a *backtrack point* so the reversed order is also explored. The
//!   serial DFS only expands candidates demanded by a backtrack point
//!   (plus the initial choice), which skips whole redundant subtrees.
//!
//! Transitions here are the baton intervals of the cooperative runtime:
//! everything a thread does between two schedule points. A transition's
//! *footprint* (the accesses it actually performed, recorded via
//! [`note_effect`](crate::state)) decides conflicts with the *pending*
//! declarations of sleeping threads (the object each parked thread will
//! touch next, declared at its schedule point). Where the next transition
//! of a thread is not fully predictable — timed waits that mutate wait
//! sets on timeout, transitions that append to the Line-Up history — the
//! declaration is conservative, trading pruning power for soundness.

use std::collections::HashMap;

use crate::events::AccessKind;
use crate::ids::ObjId;

/// Maximum number of virtual threads when partial-order reduction is
/// active: sleep and backtrack sets are `u64` bitmasks over thread ids.
pub const MAX_POR_THREADS: usize = 64;

/// Pseudo-object key under which Line-Up history appends (see
/// [`mark_history_event`](crate::runtime::mark_history_event)) are
/// tracked: the history is an ordered observation, so any two appends
/// conflict like two writes to one object.
pub(crate) const MARK_KEY: u32 = u32::MAX;

/// A vector clock over the (dense) thread ids of one execution.
///
/// Used by the DPOR happens-before tracking here and by the race/
/// serializability checkers in `lineup-checkers`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.0.len() <= n {
            self.0.resize(n + 1, 0);
        }
    }

    /// Advances this clock's component for thread `t` by one.
    pub fn tick(&mut self, t: usize) {
        self.ensure(t);
        self.0[t] += 1;
    }

    /// This clock's component for thread `t` (0 when never ticked).
    pub fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        self.ensure(other.0.len().saturating_sub(1));
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Whether the epoch `(thread, time)` is ordered before this clock.
    pub fn covers(&self, thread: usize, time: u64) -> bool {
        self.get(thread) >= time
    }

    /// Resets every component to zero, keeping the allocation (clear-and-
    /// reuse across runs).
    pub fn clear(&mut self) {
        self.0.fill(0);
    }
}

/// Declared intent of the access behind a schedule point: whether the
/// primitive operation about to run only reads its object or may write it.
/// Declared via [`schedule_access`](crate::runtime::schedule_access); the
/// conservative default ([`schedule`](crate::runtime::schedule)) is
/// [`AccessIntent::Write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessIntent {
    /// The operation reads the object and leaves it unchanged (atomic /
    /// volatile loads, plain data reads).
    Read,
    /// The operation may mutate the object (stores, RMWs, lock and monitor
    /// operations — lock ops mutate wait sets even when they fail).
    Write,
}

/// What a parked thread will do when next scheduled, declared at its
/// schedule point. This is the sleeping side of the conflict relation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) enum Pending {
    /// Parked at `schedule_access(obj, intent)`: the next transition
    /// performs that access (and possibly appends to the history, which
    /// the conflict rule accounts for separately).
    Obj { obj: u32, write: bool },
    /// Parked at a yield or operation boundary, not yet started, or
    /// resumed from an untimed block: the next transition touches no model
    /// object (it may still append to the history).
    #[default]
    NoObj,
    /// Parked in a timed block: if the modelled timeout fires, the thread
    /// mutates wait sets and runs arbitrary recovery code without a
    /// declared object. Conflicts with anything non-pure.
    Unknown,
}

/// The accumulated effects of one transition (one baton interval), reset
/// at every scheduling decision.
#[derive(Debug, Default)]
pub(crate) struct Footprint {
    /// `(object, is_write)` for every logged access to a real object.
    pub accesses: Vec<(u32, bool)>,
    /// Line-Up history appends performed in this transition.
    pub marks: u32,
    /// Threads this transition unblocked.
    pub woke: Vec<usize>,
    /// True when the transition ended in a yield (it touches the fair-
    /// scheduling state, so it is conservatively dependent on everything)
    /// or started from an [`Pending::Unknown`] declaration.
    pub wildcard: bool,
    /// The declared intent of the thread that ran this transition, used as
    /// a fallback when the primitive logged nothing (e.g. a failed lock
    /// acquire mutates the wait set without an access-log entry).
    pub declared: Pending,
}

impl Footprint {
    /// Empties the footprint in place, retaining its buffers for the next
    /// transition.
    fn clear(&mut self) {
        self.accesses.clear();
        self.marks = 0;
        self.woke.clear();
        self.wildcard = false;
        self.declared = Pending::NoObj;
    }

    fn is_pure(&self) -> bool {
        self.accesses.is_empty() && self.marks == 0 && self.woke.is_empty() && !self.wildcard
    }

    /// Whether this (finalized) footprint conflicts with the pending
    /// transition of a sleeping thread. Conservative in both directions:
    /// history appends conflict with every pending (any resumed operation
    /// may append its call/return next), and wildcards conflict with
    /// everything.
    fn conflicts(&self, pending: Pending) -> bool {
        if self.wildcard || self.marks > 0 {
            return true;
        }
        match pending {
            Pending::Obj { obj, write } => {
                self.accesses.iter().any(|&(o, w)| o == obj && (w || write))
            }
            Pending::NoObj => false,
            Pending::Unknown => !self.is_pure(),
        }
    }
}

/// The last recorded access of one kind to one object: who did it, at
/// which schedule-tree node they were chosen, and their clock after it.
#[derive(Debug, Clone)]
struct Rec {
    thread: usize,
    /// The strategy-tree node at which `thread` was chosen for the
    /// transition performing this access; `None` when the transition was
    /// forced (singleton candidate) or chosen inside a replayed prefix.
    node: Option<usize>,
    clock: VectorClock,
}

#[derive(Debug, Default)]
struct ObjRecords {
    last_write: Option<Rec>,
    /// Last read per thread since the last write.
    reads: Vec<Rec>,
}

/// A backtrack demand produced while finalizing a transition: thread
/// `thread` must also be tried at strategy-tree node `node`.
pub(crate) struct BacktrackDemand {
    pub node: usize,
    pub thread: usize,
}

/// Per-run partial-order-reduction state.
#[derive(Debug, Default)]
pub(crate) struct PorRun {
    /// Sleep set: bitmask of threads whose exploration from the current
    /// state is redundant.
    pub sleep: u64,
    /// Per-thread vector clocks (indexed by thread id).
    clocks: Vec<VectorClock>,
    objects: HashMap<u32, ObjRecords>,
    last_wildcard: Option<Rec>,
    /// The strategy-tree node at which the current transition's thread was
    /// chosen (`None` for forced transitions).
    pub cur_node: Option<usize>,
    /// The footprint of the transition currently executing.
    pub foot: Footprint,
    /// Declared pending transition per thread.
    pub pending: Vec<Pending>,
    /// Per-decision sleep additions, parallel to the run's `decisions`;
    /// shipped with stolen subtree prefixes so parallel workers inherit
    /// the sleep sets a serial DFS would have at the subtree root.
    pub slept_log: Vec<u64>,
}

fn bit(t: usize) -> u64 {
    1u64 << t
}

/// Whether a logged access mutates its object *for conflict purposes*.
/// Broader than [`AccessKind::is_write`]: lock and monitor operations
/// mutate owner/wait-set state even though the race detector does not
/// treat them as data writes, so two of them on the same object must be
/// ordered for DPOR to explore both orders (e.g. the ABBA deadlock).
fn mutates(kind: AccessKind) -> bool {
    kind.is_write()
        || matches!(
            kind,
            AccessKind::LockAcquire
                | AccessKind::LockRelease
                | AccessKind::MonitorWait
                | AccessKind::MonitorPulse { .. }
        )
}

impl PorRun {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the per-run reduction state for reuse, keeping the clock,
    /// pending, and slept-log allocations (the thread count is constant
    /// across the runs of one exploration).
    pub fn reset(&mut self) {
        self.sleep = 0;
        for clock in &mut self.clocks {
            clock.clear();
        }
        self.objects.clear();
        self.last_wildcard = None;
        self.cur_node = None;
        self.foot.clear();
        self.pending.fill(Pending::NoObj);
        self.slept_log.clear();
    }

    fn clock_mut(&mut self, t: usize) -> &mut VectorClock {
        if self.clocks.len() <= t {
            self.clocks.resize(t + 1, VectorClock::new());
        }
        &mut self.clocks[t]
    }

    fn pending_of(&self, t: usize) -> Pending {
        self.pending.get(t).copied().unwrap_or(Pending::NoObj)
    }

    pub fn set_pending(&mut self, t: usize, p: Pending) {
        if self.pending.len() <= t {
            self.pending.resize(t + 1, Pending::NoObj);
        }
        self.pending[t] = p;
    }

    /// Records one logged access into the current footprint.
    pub fn note_access(&mut self, obj: ObjId, kind: AccessKind) {
        if obj == crate::events::AccessEvent::NO_OBJ {
            if kind == AccessKind::Yield {
                self.foot.wildcard = true;
            }
            return;
        }
        self.foot.accesses.push((obj.0, mutates(kind)));
    }

    /// Records a Line-Up history append into the current footprint.
    pub fn note_mark(&mut self) {
        self.foot.marks += 1;
    }

    /// Records that the current transition unblocked `t`.
    pub fn note_wake(&mut self, t: usize) {
        self.foot.woke.push(t);
    }

    /// Whether every candidate thread is asleep (the run is redundant).
    pub fn all_asleep(&self, candidates: &[usize]) -> bool {
        candidates.iter().all(|&t| self.sleep & bit(t) != 0)
    }

    /// Finalizes the footprint of the transition `p` just completed:
    /// computes DPOR backtrack demands against the happens-before
    /// relation, updates clocks and per-object records, wakes sleeping
    /// threads the transition conflicts with, and resets the footprint.
    pub fn finish_transition(&mut self, p: usize) -> Vec<BacktrackDemand> {
        let mut foot = std::mem::take(&mut self.foot);
        // Declared fallback: a primitive that logged nothing on its
        // declared object still touched it (failed lock acquires mutate
        // wait sets; reentrant monitor enters/exits go unlogged).
        match foot.declared {
            Pending::Obj { obj, write } => {
                if !foot.accesses.iter().any(|&(o, _)| o == obj) {
                    foot.accesses.push((obj, write));
                }
            }
            Pending::Unknown => foot.wildcard = true,
            Pending::NoObj => {}
        }
        if foot.marks > 0 {
            // History appends behave like writes to one pseudo-object.
            foot.accesses.push((MARK_KEY, true));
        }

        let mut demands = Vec::new();
        let mut clock = self.clock_mut(p).clone();

        // A recorded access is dependent on this transition: demand a
        // backtrack where its thread was chosen (unless already ordered)
        // and join its clock into ours.
        let meet = |rec: &Rec, clock: &mut VectorClock, demands: &mut Vec<BacktrackDemand>| {
            if rec.thread != p && !clock.covers(rec.thread, rec.clock.get(rec.thread)) {
                if let Some(node) = rec.node {
                    demands.push(BacktrackDemand { node, thread: p });
                }
            }
            clock.join(&rec.clock);
        };

        // Yield-containing (and undeclared-timeout) transitions are
        // conservatively dependent on everything recorded so far.
        if let Some(rec) = &self.last_wildcard {
            meet(rec, &mut clock, &mut demands);
        }
        if foot.wildcard {
            for recs in self.objects.values() {
                if let Some(rec) = &recs.last_write {
                    meet(rec, &mut clock, &mut demands);
                }
                for rec in &recs.reads {
                    meet(rec, &mut clock, &mut demands);
                }
            }
        }
        for &(o, w) in &foot.accesses {
            if let Some(recs) = self.objects.get(&o) {
                if let Some(rec) = &recs.last_write {
                    meet(rec, &mut clock, &mut demands);
                }
                if w {
                    for rec in &recs.reads {
                        meet(rec, &mut clock, &mut demands);
                    }
                }
            }
        }

        clock.tick(p);
        let rec = Rec {
            thread: p,
            node: self.cur_node,
            clock: clock.clone(),
        };
        for &(o, w) in &foot.accesses {
            let recs = self.objects.entry(o).or_default();
            if w {
                recs.reads.clear();
                recs.last_write = Some(rec.clone());
            } else {
                recs.reads.retain(|r| r.thread != p);
                recs.reads.push(rec.clone());
            }
        }
        if foot.wildcard {
            self.last_wildcard = Some(rec);
        }
        *self.clock_mut(p) = clock.clone();
        // Waking a thread is an enabling happens-before edge.
        for &u in &foot.woke {
            self.clock_mut(u).join(&clock);
        }

        // Sleep wake-up: a sleeping thread whose pending transition
        // conflicts with (or was woken by) this one must be re-explored.
        let mut sleep = self.sleep;
        let mut t = 0;
        while sleep >> t != 0 {
            if sleep & bit(t) != 0 && (foot.woke.contains(&t) || foot.conflicts(self.pending_of(t)))
            {
                sleep &= !bit(t);
            }
            t += 1;
        }
        self.sleep = sleep;
        self.cur_node = None;
        // Recycle the footprint's buffers for the next transition instead
        // of dropping them: finish_transition runs at every schedule
        // point, so this keeps the hot path allocation-free.
        foot.clear();
        self.foot = foot;
        demands
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_clock_basics() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        a.tick(2);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert!(a.covers(0, 2));
        assert!(!a.covers(0, 3));
        let mut b = VectorClock::new();
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        assert_eq!(b.get(2), 1);
    }

    #[test]
    fn footprint_conflicts() {
        let mut f = Footprint::default();
        f.accesses.push((3, false));
        assert!(!f.conflicts(Pending::Obj {
            obj: 3,
            write: false
        }));
        assert!(f.conflicts(Pending::Obj {
            obj: 3,
            write: true
        }));
        assert!(!f.conflicts(Pending::Obj {
            obj: 4,
            write: true
        }));
        assert!(!f.conflicts(Pending::NoObj));
        assert!(f.conflicts(Pending::Unknown), "non-pure vs unknown");
        f.accesses.clear();
        f.marks = 1;
        assert!(f.conflicts(Pending::NoObj), "history appends order-matter");
        f.marks = 0;
        f.wildcard = true;
        assert!(f.conflicts(Pending::Obj {
            obj: 9,
            write: false
        }));
    }

    #[test]
    fn writes_wake_sleeping_readers() {
        let mut por = PorRun::new();
        por.sleep = bit(1) | bit(2);
        por.set_pending(
            1,
            Pending::Obj {
                obj: 7,
                write: false,
            },
        );
        por.set_pending(
            2,
            Pending::Obj {
                obj: 8,
                write: false,
            },
        );
        por.foot.declared = Pending::Obj {
            obj: 7,
            write: true,
        };
        por.foot.accesses.push((7, true));
        let demands = por.finish_transition(0);
        assert!(demands.is_empty(), "nothing recorded yet");
        assert_eq!(
            por.sleep,
            bit(2),
            "reader of 7 wakes; reader of 8 sleeps on"
        );
    }

    #[test]
    fn unordered_conflict_demands_backtrack() {
        let mut por = PorRun::new();
        // Thread 0 writes object 5 from node 4.
        por.cur_node = Some(4);
        por.foot.declared = Pending::Obj {
            obj: 5,
            write: true,
        };
        por.foot.accesses.push((5, true));
        assert!(por.finish_transition(0).is_empty());
        // Thread 1, causally unordered, writes object 5 too.
        por.cur_node = Some(6);
        por.foot.declared = Pending::Obj {
            obj: 5,
            write: true,
        };
        por.foot.accesses.push((5, true));
        let demands = por.finish_transition(1);
        assert_eq!(demands.len(), 1);
        assert_eq!(demands[0].node, 4);
        assert_eq!(demands[0].thread, 1);
        // Thread 1 again: now ordered after its own write — no demand.
        por.cur_node = Some(8);
        por.foot.declared = Pending::Obj {
            obj: 5,
            write: false,
        };
        por.foot.accesses.push((5, false));
        assert!(por.finish_transition(1).is_empty());
    }

    #[test]
    fn wake_edge_orders_threads() {
        let mut por = PorRun::new();
        // Thread 0 writes object 9 and wakes thread 1.
        por.foot.declared = Pending::Obj {
            obj: 9,
            write: true,
        };
        por.foot.accesses.push((9, true));
        por.foot.woke.push(1);
        por.finish_transition(0);
        // Thread 1 now accesses object 9: ordered via the wake edge.
        por.foot.declared = Pending::Obj {
            obj: 9,
            write: true,
        };
        por.foot.accesses.push((9, true));
        assert!(por.finish_transition(1).is_empty());
    }
}
