//! A side channel between the setup closure and the run visitor.

use std::cell::RefCell;
use std::rc::Rc;

/// Carries one per-run value (typically a handle to the state under test)
/// from the setup closure to the `on_run` visitor of
/// [`explore`](crate::explore).
///
/// Both closures run on the controller thread, so this is a plain
/// `Rc<RefCell<…>>` without synchronization. Setup stores the fresh run's
/// handle with [`put`](Probe::put); the visitor retrieves it with
/// [`take`](Probe::take) once the run has finished (at which point no
/// virtual thread is running, so inspecting the state race-free is safe).
///
/// # Example
///
/// ```
/// use lineup_sched::{explore, Config, Probe};
/// use std::ops::ControlFlow;
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let probe = Probe::new();
/// let setup_probe = probe.clone();
/// explore(
///     &Config::exhaustive(),
///     move |ex| {
///         let counter = Arc::new(AtomicUsize::new(0));
///         setup_probe.put(Arc::clone(&counter));
///         ex.spawn(move || {
///             counter.fetch_add(1, Ordering::SeqCst);
///         });
///     },
///     |_| {
///         assert_eq!(probe.take().load(Ordering::SeqCst), 1);
///         ControlFlow::Continue(())
///     },
/// );
/// ```
#[derive(Debug)]
pub struct Probe<T> {
    slot: Rc<RefCell<Option<T>>>,
}

impl<T> Probe<T> {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Probe {
            slot: Rc::new(RefCell::new(None)),
        }
    }

    /// Stores this run's value (typically called from setup).
    pub fn put(&self, value: T) {
        *self.slot.borrow_mut() = Some(value);
    }

    /// Removes and returns the stored value.
    ///
    /// # Panics
    ///
    /// Panics if nothing was stored since the last `take`.
    pub fn take(&self) -> T {
        self.slot
            .borrow_mut()
            .take()
            .expect("probe is empty: setup must call put() each run")
    }

    /// Returns a clone of the stored value without removing it.
    ///
    /// # Panics
    ///
    /// Panics if nothing is stored.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.slot
            .borrow()
            .clone()
            .expect("probe is empty: setup must call put() each run")
    }
}

impl<T> Clone for Probe<T> {
    fn clone(&self) -> Self {
        Probe {
            slot: Rc::clone(&self.slot),
        }
    }
}

impl<T> Default for Probe<T> {
    fn default() -> Self {
        Probe::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_roundtrip() {
        let p = Probe::new();
        p.put(7);
        assert_eq!(p.take(), 7);
    }

    #[test]
    fn get_leaves_value_in_place() {
        let p = Probe::new();
        p.put("x".to_string());
        assert_eq!(p.get(), "x");
        assert_eq!(p.take(), "x");
    }

    #[test]
    #[should_panic(expected = "probe is empty")]
    fn take_on_empty_panics() {
        Probe::<u8>::new().take();
    }

    #[test]
    fn clones_share_the_slot() {
        let p = Probe::new();
        let q = p.clone();
        q.put(1);
        assert_eq!(p.take(), 1);
    }
}
