//! The cooperative runtime: baton passing between virtual threads and the
//! instrumentation API used by `lineup-sync` primitives.
//!
//! Exactly one virtual thread holds the *baton* at any time. Every
//! instrumented action calls [`schedule`], which records the access, asks
//! the scheduling strategy for the next thread, passes the baton, and parks
//! the caller until it is scheduled again. Because all shared-memory
//! accesses of the component under test happen between schedule points
//! while holding the baton, executions are serializable and fully
//! deterministic given the sequence of scheduling choices — the property
//! stateless model checking relies on for replay.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

use crate::events::AccessKind;
use crate::ids::{ObjId, ThreadId};
use crate::por::{AccessIntent, Pending};
use crate::state::{BlockKind, RtState, RunOutcome, Status};

/// The state shared between the controller and the virtual threads.
pub(crate) struct Shared {
    pub state: Mutex<RtState>,
    pub cv: Condvar,
}

impl Shared {
    pub fn new(state: RtState) -> Self {
        Shared {
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }
}

/// Panic payload used to unwind virtual threads parked when a run ends
/// early (deadlock, livelock, violation stop). Caught by the worker pool.
pub(crate) struct Abort;

/// Pseudo thread id of the per-run setup closure (which constructs the
/// component under test but is not itself scheduled).
pub(crate) const SETUP_TID: usize = usize::MAX;
/// Pseudo thread id used when primitives run outside any model execution
/// (plain, unmodelled use of `lineup-sync` types).
const OUTSIDE_TID: usize = usize::MAX - 1;

struct TlsCtx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<TlsCtx>> = const { RefCell::new(None) };
}

pub(crate) fn set_tls(shared: Arc<Shared>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some(TlsCtx { shared, tid }));
}

pub(crate) fn clear_tls() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Runs `f` with the virtual-thread context, or returns `None` when the
/// caller is the setup closure or outside the model entirely.
fn with_virtual_ctx<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some(ctx) if ctx.tid != SETUP_TID => Some(f(&ctx.shared, ctx.tid)),
            _ => None,
        }
    })
}

/// Runs `f` with any model context (virtual thread or setup closure).
fn with_any_ctx<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        borrow.as_ref().map(|ctx| f(&ctx.shared, ctx.tid))
    })
}

/// Whether the calling OS thread carries *any* model context (virtual
/// thread or setup closure). Used to reject native-mode registration from
/// inside a model execution.
pub(crate) fn has_model_ctx() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Returns `true` when the calling OS thread is a virtual thread of an
/// active model execution (schedule points are live). The setup closure
/// and plain unmodelled code return `false`.
pub fn is_model_active() -> bool {
    CURRENT.with(|c| matches!(c.borrow().as_ref(), Some(ctx) if ctx.tid != SETUP_TID))
}

/// Returns the id of the calling virtual thread. On an OS thread
/// registered for [native mode](crate::native) this returns the thread's
/// unique native id. Otherwise, outside a virtual thread, it returns a
/// reserved pseudo id (stable within the setup closure and within
/// unmodelled code), so primitives can use it as an ownership key
/// everywhere.
pub fn current_thread() -> ThreadId {
    CURRENT
        .with(|c| match c.borrow().as_ref() {
            Some(ctx) => Some(ThreadId(ctx.tid)),
            None => crate::native::current_native_tid(),
        })
        .unwrap_or(ThreadId(OUTSIDE_TID))
}

/// Registers a new model object (called by primitive constructors) and
/// returns its id. Deterministic across replays because registration order
/// is determined by the schedule. Outside a model execution returns the
/// pseudo id [`AccessEvent::NO_OBJ`](crate::AccessEvent::NO_OBJ).
pub fn register_object() -> ObjId {
    with_any_ctx(|shared, _| {
        let mut st = shared.state.lock().unwrap();
        let id = ObjId(st.next_obj);
        st.next_obj += 1;
        id
    })
    .unwrap_or(crate::events::AccessEvent::NO_OBJ)
}

/// Parks the calling thread until it is scheduled again. Must be called
/// with the state lock held; returns with the lock released.
fn wait_for_turn(shared: &Arc<Shared>, tid: usize, mut guard: std::sync::MutexGuard<'_, RtState>) {
    loop {
        if guard.abort {
            drop(guard);
            std::panic::panic_any(Abort);
        }
        if guard.current == Some(tid) {
            return;
        }
        guard = shared.cv.wait(guard).unwrap();
    }
}

fn schedule_point(kind: Option<AccessKind>, pending: Pending) {
    let modelled = with_virtual_ctx(|shared, tid| {
        let mut st = shared.state.lock().unwrap();
        st.set_pending(tid, pending);
        st.note_point(tid, kind);
        let after_yield = kind == Some(AccessKind::Yield);
        let cont = st.pick_next(after_yield);
        shared.cv.notify_all();
        if !cont {
            // Run ended (possibly because of this very thread blocking
            // serially or exhausting the step budget): unwind.
            drop(st);
            std::panic::panic_any(Abort);
        }
        wait_for_turn(shared, tid, st);
    });
    if modelled.is_none() {
        // Outside the model the same points feed native-mode yield
        // injection (a no-op for unregistered threads, except that an
        // explicit yield still yields the OS thread).
        crate::native::on_schedule_point(kind == Some(AccessKind::Yield));
    }
}

/// A schedule point: lets the scheduler pick the next thread, and parks
/// the caller until it runs again.
///
/// Called by every instrumented primitive operation in `lineup-sync`
/// *before* the operation's effect, so the enumeration of schedules covers
/// every interleaving of instrumented actions. The effect itself is
/// recorded afterwards with [`log_access`].
///
/// Equivalent to [`schedule_access`] with [`AccessIntent::Write`] — the
/// conservative default for partial-order reduction. Primitives whose
/// upcoming effect is read-only should call [`schedule_access`] with
/// [`AccessIntent::Read`] instead so POR can commute them.
///
/// Outside a virtual thread (in the setup closure, or in plain unmodelled
/// code) this is a no-op, so instrumented primitives work transparently
/// everywhere.
pub fn schedule(obj: ObjId) {
    schedule_access(obj, AccessIntent::Write);
}

/// A schedule point that declares the *intent* of the upcoming effect on
/// `obj`, so partial-order reduction knows (before the effect runs and is
/// logged) whether the pending transition can conflict with others.
/// Read intents commute with each other; anything the declaration
/// understates is caught conservatively by the access log afterwards.
pub fn schedule_access(obj: ObjId, intent: AccessIntent) {
    schedule_point(
        None,
        Pending::Obj {
            obj: obj.0,
            write: intent == AccessIntent::Write,
        },
    );
}

/// Marks a history event (an operation call or return observed by the
/// Line-Up harness) on the current transition. History events order the
/// observation itself, so partial-order reduction treats the marking
/// transition as conflicting with every other pending transition — two
/// schedules that swap history events are *not* equivalent. A no-op
/// outside a virtual thread.
pub fn mark_history_event() {
    with_virtual_ctx(|shared, _| {
        let mut st = shared.state.lock().unwrap();
        st.note_mark();
    });
}

/// Records the effect of an instrumented action in the access log (no
/// context switch). Called by primitives after their schedule point, while
/// the action's outcome is known — so the log records, e.g., whether a
/// compare-and-swap succeeded or a lock acquire was granted. A no-op
/// outside a virtual thread.
pub fn log_access(obj: ObjId, kind: AccessKind) {
    with_virtual_ctx(|shared, tid| {
        let mut st = shared.state.lock().unwrap();
        st.note_effect(tid, obj, kind);
    });
}

/// A voluntary yield inside a spin loop. The fair scheduler deprioritizes
/// the caller in favour of other enabled threads; a full round of yields
/// with no progress is declared a fair livelock (paper §4: "support for
/// fairness is important because many of the concurrent data types use
/// spin-loops for synchronization").
pub fn yield_point() {
    schedule_point(Some(AccessKind::Yield), Pending::NoObj);
}

/// An operation boundary, emitted by the Line-Up harness between the
/// operations of a test. Serial mode only switches threads here; in
/// concurrent mode switching here is free (it costs no preemption).
pub fn op_boundary() {
    schedule_point(Some(AccessKind::OpBoundary), Pending::NoObj);
}

/// How a blocked thread was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockResult {
    /// The thread was explicitly unblocked (lock granted, monitor pulsed).
    Resumed,
    /// The modelled timeout fired: the scheduler chose to run the thread
    /// while it was still blocked on a [`BlockKind::Timed`] wait.
    TimedOut,
}

/// Blocks the calling thread until [`unblock`] is called for it (or, for
/// [`BlockKind::Timed`], until the scheduler fires the modelled timeout).
///
/// The caller is responsible for having registered itself in the wait set
/// of whatever primitive it blocks on *before* calling this, and for
/// re-checking the wait condition afterwards.
///
/// On an OS thread registered for [native mode](crate::native) this parks
/// the real thread instead (timed waits become real timed waits, see
/// [`native::set_timed_wait`](crate::native::set_timed_wait)).
///
/// # Panics
///
/// Panics when called outside a virtual thread and outside native mode:
/// blocking needs a scheduler (virtual or the OS one). (Unmodelled use of
/// blocking operations — e.g. `Take` on an empty collection on a plain
/// thread — is not supported; use the model checker or a native-mode
/// stress run to explore blocking behavior.)
pub fn block_current(kind: BlockKind) -> BlockResult {
    with_virtual_ctx(|shared, tid| {
        let mut st = shared.state.lock().unwrap();
        st.threads[tid].timed_fired = false;
        // A plain block parks without touching shared data once resumed
        // (the resumer re-checks the wait condition); a timed block may
        // mutate a wait set on the timeout path without logging, so its
        // pending effect is unknown to POR.
        st.set_pending(
            tid,
            match kind {
                BlockKind::Untimed => Pending::NoObj,
                BlockKind::Timed => Pending::Unknown,
            },
        );
        st.set_status(tid, Status::Blocked(kind));
        let cont = st.pick_next(false);
        shared.cv.notify_all();
        if !cont {
            drop(st);
            std::panic::panic_any(Abort);
        }
        wait_for_turn(shared, tid, st);
        let mut st = shared.state.lock().unwrap();
        if st.threads[tid].timed_fired {
            st.threads[tid].timed_fired = false;
            BlockResult::TimedOut
        } else {
            BlockResult::Resumed
        }
    })
    .or_else(|| crate::native::block_native(kind))
    .expect("lineup-sched: cannot block outside a model execution or native mode")
}

/// Makes the given thread runnable again. Called by primitives when a lock
/// is released or a monitor is pulsed. Does not switch threads; the woken
/// thread re-competes at the caller's next schedule point. Dispatches on
/// the *target* id: a thread parked in [native mode](crate::native) is
/// unparked regardless of who calls. Otherwise a no-op outside a virtual
/// thread (nothing can be blocked then).
pub fn unblock(thread: ThreadId) {
    if crate::native::is_native_tid(thread) {
        crate::native::unblock_native(thread);
        return;
    }
    with_virtual_ctx(|shared, _| {
        let mut st = shared.state.lock().unwrap();
        if matches!(st.status(thread.0), Status::Blocked(_)) {
            st.threads[thread.0].timed_fired = false;
            st.set_status(thread.0, Status::Runnable);
            // POR: the wake orders the woken thread after the waker and
            // removes it from the sleep set (its enabledness changed).
            st.note_wake(thread.0);
            // Unblocking is progress: reset fair-livelock tracking.
            st.yield_rounds = 0;
            for t in &mut st.threads {
                t.yielded_since_progress = false;
                t.consecutive_yields = 0;
            }
        }
    });
}

/// Makes a nondeterministic boolean choice, enumerated by the explorer
/// like a scheduling choice. Useful for modelling environment
/// nondeterminism beyond scheduling (the timed-lock timeouts use the
/// dedicated [`BlockKind::Timed`] mechanism instead). In [native
/// mode](crate::native) the choice is a seeded coin flip (environment
/// nondeterminism is real in a stress run); otherwise, outside a virtual
/// thread, it is deterministically `false`.
pub fn choose_bool() -> bool {
    with_virtual_ctx(|shared, tid| {
        let mut st = shared.state.lock().unwrap();
        st.pick_bool(tid)
    })
    .or_else(crate::native::choose_bool_native)
    .unwrap_or(false)
}

/// Runs `body` as the virtual thread `tid`: waits to be scheduled, marks
/// the thread runnable, executes the closure, then marks it finished and
/// passes the baton. Used by the explorer's worker pool.
pub(crate) fn run_virtual_thread(shared: &Arc<Shared>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    {
        let mut st = shared.state.lock().unwrap();
        // Park until the first decision schedules us.
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.current == Some(tid) {
                break;
            }
            st = shared.cv.wait(st).unwrap();
        }
        st.set_status(tid, Status::Runnable);
        st.note_point(tid, Some(AccessKind::ThreadStart));
        // Keep the baton: the thread proceeds into its closure.
    }
    body();
    let mut st = shared.state.lock().unwrap();
    st.set_status(tid, Status::Finished);
    st.note_point(tid, Some(AccessKind::ThreadFinish));
    st.pick_next(false);
    shared.cv.notify_all();
    // Whether or not the run ended, this thread simply returns.
}

/// Handles a user panic on a virtual thread: records it and aborts the run.
pub(crate) fn handle_user_panic(shared: &Arc<Shared>, tid: usize, payload: &dyn std::any::Any) {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    let mut st = shared.state.lock().unwrap();
    st.set_status(tid, Status::Finished);
    if st.run_over.is_none() {
        st.run_over = Some(RunOutcome::Panicked {
            thread: ThreadId(tid),
            message,
        });
    }
    st.abort = true;
    st.current = None;
    shared.cv.notify_all();
}
