//! The cooperative runtime: baton passing between virtual threads and the
//! instrumentation API used by `lineup-sync` primitives.
//!
//! Exactly one virtual thread holds the *baton* at any time. Every
//! instrumented action calls [`schedule`], which records the access, asks
//! the scheduling strategy for the next thread, and hands the baton over.
//! Because all shared-memory accesses of the component under test happen
//! between schedule points while holding the baton, executions are
//! serializable and fully deterministic given the sequence of scheduling
//! choices — the property stateless model checking relies on for replay.
//!
//! # Baton mechanics
//!
//! The handoff is *targeted*: every virtual thread (and the controller)
//! owns a [`WakeSlot`], a one-token parker. The thread releasing the baton
//! signals exactly the chosen successor's slot — no shared condition
//! variable, no broadcast waking every parked thread just so one can
//! proceed. A token can be deposited before the receiver parks (the run's
//! first decision may land before a pool worker reaches its slot), so the
//! slot stores the token rather than an edge-triggered notification.
//!
//! When the strategy's next choice is the thread *already running* — the
//! common case while depth-first search extends the current branch — the
//! thread takes the same-thread continuation fast path: the schedule
//! *point* still happens in full (pending declaration, strategy decision,
//! schedule/decision recording, POR footprint settlement), but the
//! *handoff* is skipped — no park, no unpark, no OS context switch. Only
//! the handoff is skippable: skipping the point itself would change which
//! interleavings exist and break replay. [`Config::fast_path`] forces the
//! slow slot-based handoff for equivalence testing.

use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::events::AccessKind;
use crate::ids::{ObjId, ThreadId};
use crate::por::{AccessIntent, Pending};
use crate::state::{BlockKind, RtState, RunOutcome, Status};

/// A wakeup token deposited in a [`WakeSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    /// Proceed: the receiver holds the baton (or, for the controller, the
    /// run is over).
    Run,
    /// The run ended while the receiver was parked: unwind via [`Abort`].
    Abort,
}

/// A one-token parker: the targeted replacement for the old shared
/// `Condvar` + `notify_all`. `signal` deposits a token and wakes (at most)
/// the one owner; `wait` parks until a token is present and consumes it.
/// Storing the token makes the protocol immune to signal-before-park
/// races. The scheduling protocol guarantees at most one token is ever
/// outstanding per slot (only the baton holder makes decisions, and a run
/// ends exactly once); `signal` asserts it in debug builds.
///
/// The implementation deliberately avoids a `Condvar`: on a single core,
/// depositing the token wakes the receiver *preemptively*, and with a
/// condvar the preempted signaler still holds the condvar's internal
/// glibc lock — the receiver immediately blocks on it, turning one
/// context switch per handoff into nearly three (measured ~2.8 on a
/// one-core host). Instead the slot parks through `std::thread::park`,
/// whose `unpark` is called with no lock held, so a preempted signaler
/// never stands between the receiver and its token.
///
/// Each slot is owned by exactly one parking thread for its whole life
/// (the worker pool binds virtual-thread ids to pool threads; the
/// controller slot is owned by the exploring thread). The owner registers
/// its handle on first `wait`; a `signal` racing with that first wait is
/// safe because both sides take the token mutex — if the signaler's
/// critical section comes second it observes the registered owner and
/// unparks it, and if it comes first the waiter observes the token.
pub(crate) struct WakeSlot {
    token: Mutex<Option<Wake>>,
    /// The one thread that parks on this slot, registered at its first
    /// `wait`. Written before the waiter's first token check and read
    /// inside the signaler's token critical section (see above).
    owner: std::sync::OnceLock<std::thread::Thread>,
}

impl WakeSlot {
    pub fn new() -> Self {
        WakeSlot {
            token: Mutex::new(None),
            owner: std::sync::OnceLock::new(),
        }
    }

    /// Deposits a token and wakes the owner if parked. The unpark happens
    /// after the token lock is released: waking the receiver while
    /// holding any lock it needs invites wakeup preemption to stall both
    /// threads (see the type-level docs).
    pub fn signal(&self, w: Wake) {
        {
            let mut t = self.token.lock().unwrap();
            debug_assert!(t.is_none(), "wakeup slot already holds {t:?}");
            *t = Some(w);
        }
        if let Some(owner) = self.owner.get() {
            owner.unpark();
        }
    }

    /// Like [`signal`](WakeSlot::signal), but overwrites any token already
    /// present and tolerates a poisoned slot. Only used when tearing down
    /// a run after a worker thread died, where the single-token invariant
    /// may no longer hold.
    pub fn force_signal(&self, w: Wake) {
        {
            let mut t = self.token.lock().unwrap_or_else(|e| e.into_inner());
            *t = Some(w);
        }
        if let Some(owner) = self.owner.get() {
            owner.unpark();
        }
    }

    /// Parks until a token is deposited, then consumes and returns it.
    /// Must only ever be called from the slot's owning thread.
    pub fn wait(&self) -> Wake {
        self.register_owner();
        loop {
            if let Some(w) = self.token.lock().unwrap().take() {
                return w;
            }
            // A stale park token (e.g. an unpark that raced a previous
            // consumed wait, or channel internals unparking this thread)
            // only makes the loop re-check; a missing one cannot occur —
            // the signaler either saw our registration and unparks, or
            // ran before it and its token is already visible above.
            std::thread::park();
        }
    }

    /// Like [`wait`](WakeSlot::wait) but gives up after `dur`, returning
    /// `None`. Used by the controller so a dying worker thread cannot hang
    /// the exploration (it periodically re-checks worker liveness).
    pub fn wait_timeout(&self, dur: Duration) -> Option<Wake> {
        self.register_owner();
        let deadline = std::time::Instant::now() + dur;
        loop {
            if let Some(w) = self.token.lock().unwrap().take() {
                return Some(w);
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return self.token.lock().unwrap().take();
            };
            std::thread::park_timeout(remaining);
        }
    }

    fn register_owner(&self) {
        if self.owner.get().is_none() {
            let _ = self.owner.set(std::thread::current());
            debug_assert_eq!(
                self.owner.get().map(std::thread::Thread::id),
                Some(std::thread::current().id()),
                "a wakeup slot has exactly one parking owner"
            );
        }
    }
}

/// The state shared between the controller and the virtual threads.
pub(crate) struct Shared {
    pub state: Mutex<RtState>,
    /// The controller's own wakeup slot, signaled exactly once per run by
    /// whichever thread ends it (see [`finish_run_wakeups`]).
    pub controller: WakeSlot,
}

impl Shared {
    pub fn new(state: RtState) -> Self {
        Shared {
            state: Mutex::new(state),
            controller: WakeSlot::new(),
        }
    }
}

/// Panic payload used to unwind virtual threads parked when a run ends
/// early (deadlock, livelock, violation stop). Caught by the worker pool.
pub(crate) struct Abort;

/// Pseudo thread id of the per-run setup closure (which constructs the
/// component under test but is not itself scheduled).
pub(crate) const SETUP_TID: usize = usize::MAX;
/// Pseudo thread id used when primitives run outside any model execution
/// (plain, unmodelled use of `lineup-sync` types).
const OUTSIDE_TID: usize = usize::MAX - 1;

struct TlsCtx {
    shared: Arc<Shared>,
    tid: usize,
    /// The calling virtual thread's own wakeup slot (`None` for the setup
    /// closure). Cached here so the baton handoff needs no state-lock
    /// access — and no per-handoff `Arc` refcount traffic — to find where
    /// to park.
    slot: Option<Arc<WakeSlot>>,
}

thread_local! {
    static CURRENT: RefCell<Option<TlsCtx>> = const { RefCell::new(None) };
}

pub(crate) fn set_tls(shared: Arc<Shared>, tid: usize, slot: Option<Arc<WakeSlot>>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(TlsCtx { shared, tid, slot }));
}

/// Retargets the current-thread id of an existing context. Used by the
/// fiber backend, where every virtual thread runs on the same OS thread
/// and each stack switch must move the TLS identity with the baton (the
/// non-switching instrumentation — [`log_access`], [`current_thread`],
/// [`register_object`], [`unblock`] — reads it).
#[cfg(all(feature = "fibers", target_arch = "x86_64", target_os = "linux"))]
pub(crate) fn set_tls_tid(tid: usize) {
    CURRENT.with(|c| {
        c.borrow_mut()
            .as_mut()
            .expect("fiber runs install a context before switching")
            .tid = tid;
    });
}

pub(crate) fn clear_tls() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Runs `f` with the virtual-thread context, or returns `None` when the
/// caller is the setup closure or outside the model entirely.
fn with_virtual_ctx<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some(ctx) if ctx.tid != SETUP_TID => Some(f(&ctx.shared, ctx.tid)),
            _ => None,
        }
    })
}

/// Like [`with_virtual_ctx`] but also hands `f` the thread's own wakeup
/// slot, for the paths that park.
fn with_parking_ctx<R>(f: impl FnOnce(&Arc<Shared>, usize, &WakeSlot) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some(ctx) if ctx.tid != SETUP_TID => {
                let slot = ctx.slot.as_ref().expect("virtual threads own a slot");
                Some(f(&ctx.shared, ctx.tid, slot))
            }
            _ => None,
        }
    })
}

/// Runs `f` with any model context (virtual thread or setup closure).
fn with_any_ctx<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        borrow.as_ref().map(|ctx| f(&ctx.shared, ctx.tid))
    })
}

/// Whether the calling OS thread carries *any* model context (virtual
/// thread or setup closure). Used to reject native-mode registration from
/// inside a model execution.
pub(crate) fn has_model_ctx() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Returns `true` when the calling OS thread is a virtual thread of an
/// active model execution (schedule points are live). The setup closure
/// and plain unmodelled code return `false`.
pub fn is_model_active() -> bool {
    CURRENT.with(|c| matches!(c.borrow().as_ref(), Some(ctx) if ctx.tid != SETUP_TID))
}

/// Returns the id of the calling virtual thread. On an OS thread
/// registered for [native mode](crate::native) this returns the thread's
/// unique native id. Otherwise, outside a virtual thread, it returns a
/// reserved pseudo id (stable within the setup closure and within
/// unmodelled code), so primitives can use it as an ownership key
/// everywhere.
pub fn current_thread() -> ThreadId {
    CURRENT
        .with(|c| match c.borrow().as_ref() {
            Some(ctx) => Some(ThreadId(ctx.tid)),
            None => crate::native::current_native_tid(),
        })
        .unwrap_or(ThreadId(OUTSIDE_TID))
}

/// Registers a new model object (called by primitive constructors) and
/// returns its id. Deterministic across replays because registration order
/// is determined by the schedule. Outside a model execution returns the
/// pseudo id [`AccessEvent::NO_OBJ`](crate::AccessEvent::NO_OBJ).
pub fn register_object() -> ObjId {
    with_any_ctx(|shared, _| {
        let mut st = shared.state.lock().unwrap();
        let id = ObjId(st.next_obj);
        st.next_obj += 1;
        id
    })
    .unwrap_or(crate::events::AccessEvent::NO_OBJ)
}

/// Claims the baton handoff to the thread just chosen by
/// [`pick_next`](RtState::pick_next): counts it and returns the
/// successor's slot. The caller must **release the state lock before
/// signaling** the returned slot — waking the successor while still
/// holding the lock invites the kernel's wakeup preemption to run it
/// straight into the lock we hold, turning one context switch per handoff
/// into three (wake, block on the state mutex, wake again). Counted in
/// [`handoffs`](crate::ExploreStats::handoffs) — including self-handoffs
/// on the forced slow path, which go through the slot machinery too.
pub(crate) fn take_handoff(st: &mut RtState) -> Arc<WakeSlot> {
    let next = st
        .current
        .expect("take_handoff requires a scheduled thread");
    st.handoffs += 1;
    Arc::clone(&st.slots[next])
}

/// The wakeups ending one run, gathered under the state lock by
/// [`finish_run_wakeups`] and fired by [`RunTeardown::fire`] *after* the
/// lock is released (same wakeup-preemption hazard as [`take_handoff`]:
/// every thread woken under the lock would immediately block on it).
pub(crate) struct RunTeardown {
    abort: Vec<Arc<WakeSlot>>,
}

impl RunTeardown {
    /// Deposits `Abort` in every gathered slot and wakes the controller.
    /// Must be called with the state lock released.
    pub fn fire(self, shared: &Shared) {
        for slot in &self.abort {
            slot.signal(Wake::Abort);
        }
        shared.controller.signal(Wake::Run);
    }
}

/// Ends the run on the wakeup-slot level: gathers the slot of every
/// unfinished thread other than `me` (they are all parked — only the
/// baton holder executes) for an `Abort` token, plus the controller wake.
/// Called exactly once per run by whichever context ends it: the thread
/// whose schedule point saw the run end, the finishing/panicking thread,
/// or the controller when the initial decision already ends the run (zero
/// threads). The caller drops the state lock, then fires the teardown.
pub(crate) fn finish_run_wakeups(st: &mut RtState, me: Option<usize>) -> RunTeardown {
    let mut abort = Vec::new();
    for t in 0..st.threads.len() {
        if Some(t) != me && st.threads[t].status != Status::Finished {
            abort.push(Arc::clone(&st.slots[t]));
        }
    }
    RunTeardown { abort }
}

/// The schedule point under the fiber backend. The *point* is the same
/// code path as the OS-thread version below — pending declaration,
/// point/step accounting, `pick_next` with all its POR and livelock
/// bookkeeping, fast-path check, handoff counting — only the handoff
/// itself differs: a userspace stack switch instead of a slot
/// signal/park pair. Holding no `RefCell` borrow and no state-lock guard
/// across the switch is load-bearing: the resumed fiber runs on the same
/// OS thread and takes both again.
fn fiber_schedule_point(
    rt: *mut crate::fiber::FiberRt,
    tid: usize,
    kind: Option<AccessKind>,
    pending: Pending,
) {
    crate::fiber::check_stack(rt, tid);
    let shared = unsafe { crate::fiber::shared_of(rt) };
    let mut st = shared.state.lock().unwrap();
    st.set_pending(tid, pending);
    st.note_point(tid, kind);
    let after_yield = kind == Some(AccessKind::Yield);
    if !st.pick_next(after_yield) {
        // Run ended. No slots to tear down — no OS thread is parked; the
        // started fibers are unwound by the controller, which the abort
        // unwind below switches back to (see `fiber_entry`).
        drop(st);
        std::panic::panic_any(Abort);
    }
    if st.current == Some(tid) && st.config.fast_path {
        st.fast_path_steps += 1;
        return;
    }
    st.handoffs += 1;
    let next = st.current.expect("a thread was scheduled");
    drop(st);
    match unsafe { crate::fiber::fiber_handoff(rt, tid, next) } {
        Wake::Run => {}
        Wake::Abort => std::panic::panic_any(Abort),
    }
}

/// [`block_current`] under the fiber backend; see [`fiber_schedule_point`].
fn fiber_block_current(rt: *mut crate::fiber::FiberRt, tid: usize, kind: BlockKind) -> BlockResult {
    crate::fiber::check_stack(rt, tid);
    let shared = unsafe { crate::fiber::shared_of(rt) };
    let mut st = shared.state.lock().unwrap();
    st.threads[tid].timed_fired = false;
    st.set_pending(
        tid,
        match kind {
            BlockKind::Untimed => Pending::NoObj,
            BlockKind::Timed => Pending::Unknown,
        },
    );
    st.set_status(tid, Status::Blocked(kind));
    if !st.pick_next(false) {
        drop(st);
        std::panic::panic_any(Abort);
    }
    if st.current == Some(tid) && st.config.fast_path {
        st.fast_path_steps += 1;
        let fired = st.threads[tid].timed_fired;
        st.threads[tid].timed_fired = false;
        return if fired {
            BlockResult::TimedOut
        } else {
            BlockResult::Resumed
        };
    }
    st.handoffs += 1;
    let next = st.current.expect("a thread was scheduled");
    drop(st);
    match unsafe { crate::fiber::fiber_handoff(rt, tid, next) } {
        Wake::Run => {}
        Wake::Abort => std::panic::panic_any(Abort),
    }
    let mut st = shared.state.lock().unwrap();
    if st.threads[tid].timed_fired {
        st.threads[tid].timed_fired = false;
        BlockResult::TimedOut
    } else {
        BlockResult::Resumed
    }
}

fn schedule_point(kind: Option<AccessKind>, pending: Pending) {
    if let Some((rt, tid)) = crate::fiber::fiber_ctx() {
        return fiber_schedule_point(rt, tid, kind, pending);
    }
    let modelled = with_parking_ctx(|shared, tid, slot| {
        let mut st = shared.state.lock().unwrap();
        st.set_pending(tid, pending);
        st.note_point(tid, kind);
        let after_yield = kind == Some(AccessKind::Yield);
        let cont = st.pick_next(after_yield);
        if !cont {
            // Run ended (possibly because of this very thread blocking
            // serially or exhausting the step budget): wake everyone for
            // teardown, then unwind.
            let teardown = finish_run_wakeups(&mut st, Some(tid));
            drop(st);
            teardown.fire(shared);
            std::panic::panic_any(Abort);
        }
        if st.current == Some(tid) && st.config.fast_path {
            // Same-thread continuation: the scheduling decision is made
            // and recorded; only the baton handoff is skipped.
            st.fast_path_steps += 1;
            return;
        }
        let next = take_handoff(&mut st);
        drop(st);
        next.signal(Wake::Run);
        match slot.wait() {
            Wake::Run => {}
            Wake::Abort => std::panic::panic_any(Abort),
        }
    });
    if modelled.is_none() {
        // Outside the model the same points feed native-mode yield
        // injection (a no-op for unregistered threads, except that an
        // explicit yield still yields the OS thread).
        crate::native::on_schedule_point(kind == Some(AccessKind::Yield));
    }
}

/// A schedule point: lets the scheduler pick the next thread, and parks
/// the caller until it runs again.
///
/// Called by every instrumented primitive operation in `lineup-sync`
/// *before* the operation's effect, so the enumeration of schedules covers
/// every interleaving of instrumented actions. The effect itself is
/// recorded afterwards with [`log_access`].
///
/// Equivalent to [`schedule_access`] with [`AccessIntent::Write`] — the
/// conservative default for partial-order reduction. Primitives whose
/// upcoming effect is read-only should call [`schedule_access`] with
/// [`AccessIntent::Read`] instead so POR can commute them.
///
/// Outside a virtual thread (in the setup closure, or in plain unmodelled
/// code) this is a no-op, so instrumented primitives work transparently
/// everywhere.
pub fn schedule(obj: ObjId) {
    schedule_access(obj, AccessIntent::Write);
}

/// A schedule point that declares the *intent* of the upcoming effect on
/// `obj`, so partial-order reduction knows (before the effect runs and is
/// logged) whether the pending transition can conflict with others.
/// Read intents commute with each other; anything the declaration
/// understates is caught conservatively by the access log afterwards.
pub fn schedule_access(obj: ObjId, intent: AccessIntent) {
    schedule_point(
        None,
        Pending::Obj {
            obj: obj.0,
            write: intent == AccessIntent::Write,
        },
    );
}

/// Marks a history event (an operation call or return observed by the
/// Line-Up harness) on the current transition. History events order the
/// observation itself, so partial-order reduction treats the marking
/// transition as conflicting with every other pending transition — two
/// schedules that swap history events are *not* equivalent. A no-op
/// outside a virtual thread.
pub fn mark_history_event() {
    with_virtual_ctx(|shared, _| {
        let mut st = shared.state.lock().unwrap();
        st.note_mark();
    });
}

/// Records the effect of an instrumented action in the access log (no
/// context switch). Called by primitives after their schedule point, while
/// the action's outcome is known — so the log records, e.g., whether a
/// compare-and-swap succeeded or a lock acquire was granted. A no-op
/// outside a virtual thread.
pub fn log_access(obj: ObjId, kind: AccessKind) {
    with_virtual_ctx(|shared, tid| {
        let mut st = shared.state.lock().unwrap();
        st.note_effect(tid, obj, kind);
    });
}

/// A voluntary yield inside a spin loop. The fair scheduler deprioritizes
/// the caller in favour of other enabled threads; a full round of yields
/// with no progress is declared a fair livelock (paper §4: "support for
/// fairness is important because many of the concurrent data types use
/// spin-loops for synchronization").
pub fn yield_point() {
    schedule_point(Some(AccessKind::Yield), Pending::NoObj);
}

/// An operation boundary, emitted by the Line-Up harness between the
/// operations of a test. Serial mode only switches threads here; in
/// concurrent mode switching here is free (it costs no preemption).
pub fn op_boundary() {
    schedule_point(Some(AccessKind::OpBoundary), Pending::NoObj);
}

/// How a blocked thread was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockResult {
    /// The thread was explicitly unblocked (lock granted, monitor pulsed).
    Resumed,
    /// The modelled timeout fired: the scheduler chose to run the thread
    /// while it was still blocked on a [`BlockKind::Timed`] wait.
    TimedOut,
}

/// Blocks the calling thread until [`unblock`] is called for it (or, for
/// [`BlockKind::Timed`], until the scheduler fires the modelled timeout).
///
/// The caller is responsible for having registered itself in the wait set
/// of whatever primitive it blocks on *before* calling this, and for
/// re-checking the wait condition afterwards.
///
/// On an OS thread registered for [native mode](crate::native) this parks
/// the real thread instead (timed waits become real timed waits, see
/// [`native::set_timed_wait`](crate::native::set_timed_wait)).
///
/// # Panics
///
/// Panics when called outside a virtual thread and outside native mode:
/// blocking needs a scheduler (virtual or the OS one). (Unmodelled use of
/// blocking operations — e.g. `Take` on an empty collection on a plain
/// thread — is not supported; use the model checker or a native-mode
/// stress run to explore blocking behavior.)
pub fn block_current(kind: BlockKind) -> BlockResult {
    if let Some((rt, tid)) = crate::fiber::fiber_ctx() {
        return fiber_block_current(rt, tid, kind);
    }
    with_parking_ctx(|shared, tid, slot| {
        let mut st = shared.state.lock().unwrap();
        st.threads[tid].timed_fired = false;
        // A plain block parks without touching shared data once resumed
        // (the resumer re-checks the wait condition); a timed block may
        // mutate a wait set on the timeout path without logging, so its
        // pending effect is unknown to POR.
        st.set_pending(
            tid,
            match kind {
                BlockKind::Untimed => Pending::NoObj,
                BlockKind::Timed => Pending::Unknown,
            },
        );
        st.set_status(tid, Status::Blocked(kind));
        let cont = st.pick_next(false);
        if !cont {
            let teardown = finish_run_wakeups(&mut st, Some(tid));
            drop(st);
            teardown.fire(shared);
            std::panic::panic_any(Abort);
        }
        if st.current == Some(tid) && st.config.fast_path {
            // Only reachable for timed waits (an untimed-blocked thread is
            // not schedulable): the scheduler chose this thread, firing
            // its modelled timeout — continue inline without parking.
            st.fast_path_steps += 1;
            let fired = st.threads[tid].timed_fired;
            st.threads[tid].timed_fired = false;
            return if fired {
                BlockResult::TimedOut
            } else {
                BlockResult::Resumed
            };
        }
        let next = take_handoff(&mut st);
        drop(st);
        next.signal(Wake::Run);
        match slot.wait() {
            Wake::Run => {}
            Wake::Abort => std::panic::panic_any(Abort),
        }
        let mut st = shared.state.lock().unwrap();
        if st.threads[tid].timed_fired {
            st.threads[tid].timed_fired = false;
            BlockResult::TimedOut
        } else {
            BlockResult::Resumed
        }
    })
    .or_else(|| crate::native::block_native(kind))
    .expect("lineup-sched: cannot block outside a model execution or native mode")
}

/// Makes the given thread runnable again. Called by primitives when a lock
/// is released or a monitor is pulsed. Does not switch threads; the woken
/// thread re-competes at the caller's next schedule point. Dispatches on
/// the *target* id: a thread parked in [native mode](crate::native) is
/// unparked regardless of who calls. Otherwise a no-op outside a virtual
/// thread (nothing can be blocked then).
pub fn unblock(thread: ThreadId) {
    if crate::native::is_native_tid(thread) {
        crate::native::unblock_native(thread);
        return;
    }
    with_virtual_ctx(|shared, _| {
        let mut st = shared.state.lock().unwrap();
        if matches!(st.status(thread.0), Status::Blocked(_)) {
            st.threads[thread.0].timed_fired = false;
            st.set_status(thread.0, Status::Runnable);
            // POR: the wake orders the woken thread after the waker and
            // removes it from the sleep set (its enabledness changed).
            st.note_wake(thread.0);
            // Unblocking is progress: reset fair-livelock tracking.
            st.yield_rounds = 0;
            for t in &mut st.threads {
                t.yielded_since_progress = false;
                t.consecutive_yields = 0;
            }
        }
    });
}

/// Makes a nondeterministic boolean choice, enumerated by the explorer
/// like a scheduling choice. Useful for modelling environment
/// nondeterminism beyond scheduling (the timed-lock timeouts use the
/// dedicated [`BlockKind::Timed`] mechanism instead). In [native
/// mode](crate::native) the choice is a seeded coin flip (environment
/// nondeterminism is real in a stress run); otherwise, outside a virtual
/// thread, it is deterministically `false`.
pub fn choose_bool() -> bool {
    with_virtual_ctx(|shared, tid| {
        let mut st = shared.state.lock().unwrap();
        st.pick_bool(tid)
    })
    .or_else(crate::native::choose_bool_native)
    .unwrap_or(false)
}

/// Runs `body` as the virtual thread `tid`: parks on the thread's wakeup
/// slot until the first decision schedules it, marks the thread runnable,
/// executes the closure, then marks it finished and passes the baton.
/// Used by the explorer's worker pool, which hands the thread its own
/// slot so the initial park touches no shared lock (the controller may
/// still hold the state lock for the initial decision at that moment).
pub(crate) fn run_virtual_thread(
    shared: &Arc<Shared>,
    tid: usize,
    slot: &WakeSlot,
    body: Box<dyn FnOnce() + Send>,
) {
    // Park until the first decision schedules us (the token may already be
    // there: the controller makes the initial decision right after
    // dispatching, possibly before this worker reaches its slot).
    match slot.wait() {
        Wake::Run => {}
        Wake::Abort => std::panic::panic_any(Abort),
    }
    {
        let mut st = shared.state.lock().unwrap();
        st.set_status(tid, Status::Runnable);
        st.note_point(tid, Some(AccessKind::ThreadStart));
        // Keep the baton: the thread proceeds into its closure.
    }
    body();
    let mut st = shared.state.lock().unwrap();
    st.set_status(tid, Status::Finished);
    st.note_point(tid, Some(AccessKind::ThreadFinish));
    if st.pick_next(false) {
        let next = take_handoff(&mut st);
        drop(st);
        next.signal(Wake::Run);
    } else {
        let teardown = finish_run_wakeups(&mut st, Some(tid));
        drop(st);
        teardown.fire(shared);
    }
    // Whether or not the run ended, this thread simply returns.
}

/// Extracts the human-readable message of a user panic payload. Shared
/// between the worker pool's panic handling and the fiber backend's.
pub(crate) fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Handles a user panic on a virtual thread: records it and aborts the run.
pub(crate) fn handle_user_panic(shared: &Arc<Shared>, tid: usize, payload: &dyn std::any::Any) {
    let message = panic_message(payload);
    let mut st = shared.state.lock().unwrap();
    st.set_status(tid, Status::Finished);
    if st.run_over.is_none() {
        st.run_over = Some(RunOutcome::Panicked {
            thread: ThreadId(tid),
            message,
        });
    }
    st.abort = true;
    st.current = None;
    let teardown = finish_run_wakeups(&mut st, Some(tid));
    drop(st);
    teardown.fire(shared);
}
