//! Shared mutable state of one execution: the virtual thread table, the
//! scheduling decision logic, and end-of-run detection.

use std::sync::Arc;

use crate::config::{Config, Mode};
use crate::events::{AccessEvent, AccessKind};
use crate::ids::{ObjId, ThreadId};
use crate::por::{Pending, PorRun, MAX_POR_THREADS};
use crate::runtime::WakeSlot;
use crate::strategy::{Choice, Strategy};

/// Why a virtual thread is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Blocked on a lock or monitor; only an explicit
    /// [`unblock`](crate::unblock) can make it runnable again.
    Untimed,
    /// Blocked on a timed wait (e.g. `Monitor.TryEnter(lock, timeout)`):
    /// the scheduler may *choose* to run the thread while it is still
    /// blocked, which models the timeout firing. This is how Line-Up's
    /// model exposes the spurious-timeout bug of the paper's Fig. 1.
    Timed,
}

/// How one run (a single execution of the test program) ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All virtual threads ran to completion.
    Complete,
    /// No thread can be scheduled: every unfinished thread is blocked.
    /// Line-Up turns this run into a *stuck history* (paper §2.3).
    Deadlock,
    /// Every enabled thread is spinning (yielding) and no thread has made
    /// progress for [`Config::livelock_rounds`](crate::Config) scheduling
    /// rounds: a fair livelock. Also a stuck history.
    Livelock,
    /// Serial mode only: the running thread blocked (or diverged) in the
    /// middle of an operation, so the serial execution cannot continue.
    /// Line-Up phase 1 records this as a stuck *serial* history
    /// `H (o i t) #` (the set `Y∥` of paper §2.3).
    StuckSerial,
    /// A virtual thread panicked; the message is preserved.
    Panicked {
        /// The thread that panicked.
        thread: ThreadId,
        /// The panic payload rendered as a string.
        message: String,
    },
    /// The per-run step limit was exceeded (an unbounded loop that the
    /// livelock detector did not catch; usually a harness bug).
    StepLimit,
    /// Partial-order reduction ended the run early: every schedulable
    /// thread was in the sleep set, so every continuation of this run is
    /// Mazurkiewicz-equivalent to an already-explored schedule. The run's
    /// partial history must be discarded — the full observation was (or
    /// will be) produced by the equivalent schedule.
    Pruned,
}

impl RunOutcome {
    /// Whether this run produced a stuck history in the sense of §2.3:
    /// at least one pending operation that cannot complete.
    pub fn is_stuck(&self) -> bool {
        matches!(
            self,
            RunOutcome::Deadlock | RunOutcome::Livelock | RunOutcome::StuckSerial
        )
    }
}

/// Scheduling status of one virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Spawned but not yet scheduled for the first time.
    NotStarted,
    /// Can be scheduled.
    Runnable,
    /// Blocked; see [`BlockKind`].
    Blocked(BlockKind),
    /// The thread's closure returned (or panicked).
    Finished,
}

#[derive(Debug)]
pub(crate) struct ThreadState {
    pub status: Status,
    /// True when the thread's most recent schedule point was an operation
    /// boundary (or it has not started): serial mode allows switching to
    /// or away from such threads.
    pub at_boundary: bool,
    /// Set when the thread yields; cleared when any thread makes progress.
    /// Used for fair-livelock detection.
    pub yielded_since_progress: bool,
    /// Consecutive yields by this thread with no progress by anyone;
    /// detects serial-mode divergence.
    pub consecutive_yields: usize,
    /// Set by the scheduler when it chooses a [`BlockKind::Timed`]-blocked
    /// thread, which models its timeout firing.
    pub timed_fired: bool,
    /// Operation index (incremented at each boundary), for the access log.
    pub op_index: usize,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            status: Status::NotStarted,
            at_boundary: true,
            yielded_since_progress: false,
            consecutive_yields: 0,
            timed_fired: false,
            op_index: 0,
        }
    }

    fn is_enabled(&self) -> bool {
        matches!(
            self.status,
            Status::NotStarted | Status::Runnable | Status::Blocked(BlockKind::Timed)
        )
    }
}

/// The state protected by the runtime mutex.
pub(crate) struct RtState {
    pub config: Config,
    pub threads: Vec<ThreadState>,
    /// The thread currently holding the baton (`None` before the first
    /// decision and after the run ends).
    pub current: Option<usize>,
    pub step: usize,
    pub preemptions: usize,
    /// Completed all-enabled-threads-yielded rounds with no progress.
    pub yield_rounds: usize,
    pub run_over: Option<RunOutcome>,
    /// Set together with `run_over`: parked threads must unwind.
    pub abort: bool,
    pub schedule: Vec<Choice>,
    /// Indexes chosen at strategy-consulted points (decisions with more
    /// than one alternative, plus boolean choices). Replaying this exact
    /// sequence with [`StrategyKind::Replay`](crate::StrategyKind)
    /// reproduces the run deterministically.
    pub decisions: Vec<usize>,
    pub access_log: Vec<AccessEvent>,
    pub next_obj: u32,
    /// The search strategy. Lives here across the whole exploration (the
    /// explorer calls `begin_run`/`end_run` through the state lock);
    /// `pick_next` moves it out temporarily to appease the borrow checker.
    pub strategy: Option<Box<dyn Strategy + Send>>,
    /// Partial-order-reduction state, present when
    /// [`Config::effective_por`](crate::Config::effective_por) holds.
    pub por: Option<PorRun>,
    /// One wakeup slot per virtual thread (indexed by thread id), grown in
    /// [`init_threads`](RtState::init_threads) and reused across runs.
    /// `Arc` so a thread can park on its own slot after releasing the
    /// state lock.
    pub slots: Vec<Arc<WakeSlot>>,
    /// Schedule points that took the same-thread continuation fast path
    /// this run (no park/unpark — see [`Config::fast_path`]).
    pub fast_path_steps: u64,
    /// Baton handoffs through a wakeup slot this run (including the
    /// forced self-handoffs when the fast path is disabled).
    pub handoffs: u64,
    /// Candidate threads masked by symmetry reduction this run, summed
    /// over the run's decisions (see [`Config::symmetry`]): each masked
    /// sibling is a first-move alternative the DFS did not have to expand.
    pub symmetry_prunes: u64,
    /// Whether [`Config::effective_symmetry`] held at construction
    /// (cached; the gate never changes during an exploration).
    sym_enabled: bool,
    /// Per-decision symmetry reductions of the current run, indexed by the
    /// strategy node id the decision reported ([`PorChoice::node`]): each
    /// entry lists `(blocked_mask, representative)` pairs, one per
    /// symmetry group that masked siblings at that node. Used to redirect
    /// DPOR backtrack demands that land on a masked sibling onto its
    /// representative — dropping such a demand would be unsound (the
    /// sibling can never be expanded at that node, so the schedule the
    /// demand was meant to cover would be lost), while scheduling the
    /// representative explores that schedule's symmetric image.
    sym_nodes: Vec<Vec<(u64, usize)>>,
    /// Scratch for the current decision's reductions; copied into
    /// `sym_nodes` once the strategy reports the node id.
    sym_scratch: Vec<(u64, usize)>,
    /// Scratch buffers for [`pick_next`](RtState::pick_next), moved out
    /// for the duration of each decision so the hot path allocates
    /// nothing after warm-up.
    enabled_buf: Vec<usize>,
    cand_buf: Vec<usize>,
}

impl std::fmt::Debug for RtState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtState")
            .field("current", &self.current)
            .field("step", &self.step)
            .field("run_over", &self.run_over)
            .finish_non_exhaustive()
    }
}

impl RtState {
    pub fn new(config: Config, nthreads: usize, strategy: Box<dyn Strategy + Send>) -> Self {
        let por = config.effective_por().then(PorRun::new);
        let sym_enabled = config.effective_symmetry();
        RtState {
            config,
            por,
            sym_enabled,
            threads: (0..nthreads).map(|_| ThreadState::new()).collect(),
            current: None,
            step: 0,
            preemptions: 0,
            yield_rounds: 0,
            run_over: None,
            abort: false,
            schedule: Vec::new(),
            decisions: Vec::new(),
            access_log: Vec::new(),
            next_obj: 0,
            strategy: Some(strategy),
            slots: Vec::new(),
            fast_path_steps: 0,
            handoffs: 0,
            symmetry_prunes: 0,
            sym_nodes: Vec::new(),
            sym_scratch: Vec::new(),
            enabled_buf: Vec::new(),
            cand_buf: Vec::new(),
        }
    }

    /// Clears the per-run state for reuse, retaining every allocation
    /// (thread table, schedule/decision/access-log buffers, POR arenas,
    /// wakeup slots) so a million-run exploration stops hammering the
    /// allocator. The config, strategy, and slots survive across runs.
    pub fn reset(&mut self) {
        self.threads.clear();
        self.current = None;
        self.step = 0;
        self.preemptions = 0;
        self.yield_rounds = 0;
        self.run_over = None;
        self.abort = false;
        self.schedule.clear();
        self.decisions.clear();
        self.access_log.clear();
        self.next_obj = 0;
        self.fast_path_steps = 0;
        self.handoffs = 0;
        self.symmetry_prunes = 0;
        for node in &mut self.sym_nodes {
            node.clear();
        }
        if let Some(por) = &mut self.por {
            por.reset();
        }
    }

    /// Sets the number of virtual threads, after the setup closure has
    /// decided how many to spawn (object registration during setup happens
    /// before the thread table exists).
    pub fn init_threads(&mut self, n: usize) {
        debug_assert!(self.threads.is_empty());
        assert!(
            (self.por.is_none() && !self.sym_enabled) || n <= MAX_POR_THREADS,
            "partial-order reduction and symmetry reduction support at \
             most {MAX_POR_THREADS} threads (sleep sets and group masks \
             are u64 bitmasks); disable them with Config::with_por(false) \
             and Config::with_symmetry(Vec::new())"
        );
        self.threads.extend((0..n).map(|_| ThreadState::new()));
        while self.slots.len() < n {
            self.slots.push(Arc::new(WakeSlot::new()));
        }
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    /// Records the *effect* of an instrumented action (performed after its
    /// schedule point, while holding the baton) in the access log, and
    /// updates progress tracking.
    pub fn note_effect(&mut self, me: usize, obj: ObjId, kind: AccessKind) {
        if self.config.record_accesses {
            self.access_log.push(AccessEvent {
                step: self.step,
                thread: ThreadId(me),
                obj,
                kind,
                op_index: self.threads[me].op_index,
            });
        }
        if let Some(por) = &mut self.por {
            por.note_access(obj, kind);
        }
        if kind.is_progress() {
            self.yield_rounds = 0;
            for t in &mut self.threads {
                t.yielded_since_progress = false;
                t.consecutive_yields = 0;
            }
        }
    }

    /// Updates per-thread flags at a schedule point. `kind` is one of
    /// `None` (a neutral pre-access point), `Yield`, `OpBoundary`,
    /// `ThreadStart`, or `ThreadFinish`.
    pub fn note_point(&mut self, me: usize, kind: Option<AccessKind>) {
        if let Some(kind) = kind {
            self.note_effect(me, AccessEvent::NO_OBJ, kind);
        }
        let th = &mut self.threads[me];
        th.at_boundary = matches!(
            kind,
            Some(AccessKind::OpBoundary) | Some(AccessKind::ThreadStart)
        );
        if kind == Some(AccessKind::OpBoundary) {
            th.op_index += 1;
        }
        if kind == Some(AccessKind::Yield) {
            th.yielded_since_progress = true;
            th.consecutive_yields += 1;
        }
    }

    fn end_run(&mut self, outcome: RunOutcome) {
        if self.run_over.is_none() {
            self.run_over = Some(outcome);
        }
        self.abort = true;
        self.current = None;
    }

    /// The scheduling decision: chooses the next thread to run, or ends
    /// the run. `after_yield` is true when the calling thread just
    /// executed a voluntary yield (it is then descheduled in favour of
    /// other enabled threads — the fair scheduler of paper §4).
    ///
    /// Returns `true` if the run continues (a thread was scheduled).
    pub fn pick_next(&mut self, after_yield: bool) -> bool {
        // Move the scratch buffers out so the inner body can fill them
        // while still calling `&mut self` methods; restored on every exit
        // path. This keeps the per-decision hot path allocation-free.
        let mut enabled = std::mem::take(&mut self.enabled_buf);
        let mut candidates = std::mem::take(&mut self.cand_buf);
        let scheduled = self.pick_next_inner(after_yield, &mut enabled, &mut candidates);
        self.enabled_buf = enabled;
        self.cand_buf = candidates;
        scheduled
    }

    fn pick_next_inner(
        &mut self,
        after_yield: bool,
        enabled: &mut Vec<usize>,
        candidates: &mut Vec<usize>,
    ) -> bool {
        if self.run_over.is_some() {
            return false;
        }
        self.step += 1;
        if self.step > self.config.max_steps {
            self.end_run(RunOutcome::StepLimit);
            return false;
        }

        // POR: the transition of the current thread just ended — settle
        // its footprint (happens-before joins, DPOR backtrack demands,
        // sleep-set wake-ups) before the next scheduling decision.
        if let Some(mut por) = self.por.take() {
            if let Some(cur) = self.current {
                let demands = por.finish_transition(cur);
                if !demands.is_empty() {
                    let strategy = self.strategy.as_mut().expect("strategy present during run");
                    for d in demands {
                        // A demand landing on a symmetry-masked sibling is
                        // redirected to the group representative: the
                        // sibling can never be expanded at that node, so
                        // the representative must cover the demanded
                        // schedule's symmetric image instead.
                        let thread = Self::redirect_demand(&self.sym_nodes, d.node, d.thread);
                        strategy.add_backtrack(d.node, thread);
                    }
                }
            }
            self.por = Some(por);
        }

        enabled.clear();
        enabled.extend((0..self.threads.len()).filter(|&t| self.threads[t].is_enabled()));
        if enabled.is_empty() {
            let outcome = if self.all_finished() {
                RunOutcome::Complete
            } else if self.config.mode == Mode::Serial {
                // In serial mode a blocked thread with nobody enabled is
                // the stuck serial history `H (o i t) #` (only the
                // current thread can ever be blocked mid-operation).
                RunOutcome::StuckSerial
            } else {
                RunOutcome::Deadlock
            };
            self.end_run(outcome);
            return false;
        }

        // Fair-livelock detection: a full round in which every enabled
        // thread yielded without anyone making progress.
        if after_yield
            && enabled
                .iter()
                .all(|&t| self.threads[t].yielded_since_progress)
        {
            self.yield_rounds += 1;
            for &t in enabled.iter() {
                self.threads[t].yielded_since_progress = false;
            }
            if self.yield_rounds >= self.config.livelock_rounds {
                let outcome = if self.config.mode == Mode::Serial {
                    RunOutcome::StuckSerial
                } else {
                    RunOutcome::Livelock
                };
                self.end_run(outcome);
                return false;
            }
        }
        // Serial-mode divergence: the running thread spins forever and no
        // other thread is allowed to intervene.
        if self.config.mode == Mode::Serial {
            if let Some(cur) = self.current {
                if self.threads[cur].consecutive_yields > self.config.livelock_rounds {
                    self.end_run(RunOutcome::StuckSerial);
                    return false;
                }
            }
        }

        let filled = match self.config.mode {
            Mode::Serial => self.serial_candidates(enabled, candidates),
            Mode::Concurrent => self.concurrent_candidates(enabled, after_yield, candidates),
        };
        if !filled {
            return false; // run was ended inside
        }
        debug_assert!(!candidates.is_empty());
        // Explore "continue the current thread" first: DFS then visits
        // mostly-sequential schedules before heavily-preempted ones, which
        // keeps the first counterexample found small (CHESS-style search
        // ordering).
        if let Some(cur) = self.current {
            if let Some(pos) = candidates.iter().position(|&t| t == cur) {
                candidates[..=pos].rotate_right(1);
            }
        }

        // POR pruning: when every candidate is asleep, each continuation
        // of this run reorders only independent transitions of an
        // already-explored schedule — abandon it.
        if let Some(por) = &self.por {
            if por.all_asleep(candidates) {
                self.end_run(RunOutcome::Pruned);
                return false;
            }
        }

        // Symmetry reduction: among fresh (never-started) candidates of
        // the same symmetry group, only the lowest-indexed one may start
        // first; the masked siblings get sleep-set treatment at this
        // decision (they are folded into the sleep mask handed to the
        // strategy, so the DFS never expands them and split/steal skips
        // them). Any schedule starting a masked sibling here is the image
        // of a representative-first schedule under a group permutation.
        let sym = self.symmetry_mask(candidates);
        if sym != 0 {
            self.symmetry_prunes += u64::from(sym.count_ones());
            let sleep = self.por.as_ref().map_or(0, |p| p.sleep);
            // Combined prune: every candidate is either asleep or masked,
            // so every continuation is equivalent (by independent-
            // transition reordering or thread renaming) to an explored
            // schedule. `all_asleep` above did not fire, so this prune is
            // charged to symmetry.
            if candidates.iter().all(|&t| (sleep | sym) & (1u64 << t) != 0) {
                self.end_run(RunOutcome::Pruned);
                return false;
            }
        }

        let idx = if candidates.len() == 1 {
            if let Some(por) = &mut self.por {
                por.cur_node = None;
            }
            0
        } else {
            let step = self.step;
            let mut strategy = self.strategy.take().expect("strategy present during run");
            let idx = if self.por.is_some() || sym != 0 {
                let sleep = self.por.as_ref().map_or(0, |p| p.sleep);
                let choice = strategy.choose_thread_por(candidates, sleep | sym, step);
                debug_assert!(choice.index < candidates.len());
                debug_assert_eq!(
                    (sleep | sym) & (1u64 << candidates[choice.index]),
                    0,
                    "the strategy must choose an awake, unmasked candidate"
                );
                if let Some(por) = &mut self.por {
                    por.slept_log.push(choice.slept);
                    por.sleep |= choice.slept;
                    por.sleep &= !(1u64 << candidates[choice.index]);
                    por.cur_node = choice.node;
                }
                if let Some(node) = choice.node {
                    // Record this decision's reductions (possibly none)
                    // under the node id, overwriting any stale entry a
                    // previous run left at the same depth, so demand
                    // redirection always sees current-run data.
                    self.record_sym_node(node);
                }
                choice.index
            } else {
                let idx = strategy.choose_thread(candidates, step);
                debug_assert!(idx < candidates.len());
                idx
            };
            self.strategy = Some(strategy);
            self.decisions.push(idx);
            idx
        };
        let next = candidates[idx];

        // Preemption accounting: switching away from an enabled, runnable,
        // non-yielding thread that is not at an operation boundary costs
        // one preemption (CHESS semantics).
        if let Some(cur) = self.current {
            let cur_th = &self.threads[cur];
            if next != cur
                && cur_th.status == Status::Runnable
                && !after_yield
                && !cur_th.at_boundary
            {
                self.preemptions += 1;
            }
        }

        self.schedule.push(Choice::Thread(ThreadId(next)));
        // Scheduling a timed-blocked thread fires its timeout.
        if self.threads[next].status == Status::Blocked(BlockKind::Timed) {
            self.threads[next].timed_fired = true;
            self.threads[next].status = Status::Runnable;
        }
        if let Some(por) = &mut self.por {
            // The next transition's footprint starts from the declared
            // intent of the thread about to run (its fallback when the
            // primitive logs nothing).
            por.foot.declared = por.pending.get(next).copied().unwrap_or_default();
        }
        self.current = Some(next);
        true
    }

    /// Computes the symmetry mask for the upcoming decision: bits of
    /// candidates that are *fresh* (never scheduled, [`Status::NotStarted`])
    /// members of a symmetry group containing at least one other fresh
    /// candidate with a lower index. The lowest-indexed fresh member of
    /// each group is the representative and stays unmasked. Freshness is
    /// what makes "identical local program counter" decidable without
    /// inspecting thread code: two fresh threads of the same group are at
    /// the same (initial) program point by definition, and once either
    /// runs its first step the group's threads are distinguishable and
    /// the reduction no longer applies to them.
    ///
    /// Fills `sym_scratch` with one `(blocked_mask, representative)` pair
    /// per contributing group, for [`RtState::record_sym_node`].
    fn symmetry_mask(&mut self, candidates: &[usize]) -> u64 {
        self.sym_scratch.clear();
        if !self.sym_enabled || candidates.len() < 2 {
            return 0;
        }
        let mut cand_mask = 0u64;
        for &t in candidates.iter() {
            cand_mask |= 1u64 << t;
        }
        let mut fresh = 0u64;
        for (t, th) in self.threads.iter().enumerate() {
            if th.status == Status::NotStarted {
                fresh |= 1u64 << t;
            }
        }
        let mut mask = 0u64;
        for i in 0..self.config.symmetry.len() {
            let live = self.config.symmetry[i] & cand_mask & fresh;
            if live.count_ones() >= 2 {
                let rep = live.trailing_zeros() as usize;
                let blocked = live & (live - 1); // all but the lowest bit
                mask |= blocked;
                self.sym_scratch.push((blocked, rep));
            }
        }
        mask
    }

    /// Stores the current decision's symmetry reductions (`sym_scratch`)
    /// under the strategy node id, clearing whatever a previous run
    /// recorded at the same depth: node ids are path positions, so the
    /// same id can name a different decision prefix across runs, and
    /// demand redirection must only ever consult current-run data. Every
    /// node that can appear in a backtrack demand is a strategy-consulted
    /// decision of the current run, so every such node is (re)recorded
    /// before any demand can reference it.
    fn record_sym_node(&mut self, node: usize) {
        if self.sym_nodes.len() <= node {
            self.sym_nodes.resize_with(node + 1, Vec::new);
        }
        let slot = &mut self.sym_nodes[node];
        slot.clear();
        slot.extend_from_slice(&self.sym_scratch);
    }

    /// Redirects a DPOR backtrack demand off a symmetry-masked sibling
    /// onto its group representative (identity when the thread is not
    /// masked at that node). See the `sym_nodes` field docs for why
    /// dropping the demand instead would be unsound.
    fn redirect_demand(sym_nodes: &[Vec<(u64, usize)>], node: usize, thread: usize) -> usize {
        if thread < MAX_POR_THREADS {
            if let Some(entries) = sym_nodes.get(node) {
                for &(blocked, rep) in entries {
                    if blocked & (1u64 << thread) != 0 {
                        return rep;
                    }
                }
            }
        }
        thread
    }

    /// Serial mode: context switches happen only at operation boundaries;
    /// a thread that blocks mid-operation ends the run as stuck-serial.
    /// Fills `out` and returns `true`, or returns `false` when the run
    /// ended (stuck serial).
    fn serial_candidates(&mut self, enabled: &[usize], out: &mut Vec<usize>) -> bool {
        out.clear();
        if let Some(cur) = self.current {
            let th = &self.threads[cur];
            match th.status {
                Status::Runnable if !th.at_boundary => {
                    // Mid-operation: must continue the current thread.
                    out.push(cur);
                    return true;
                }
                Status::Blocked(BlockKind::Timed) => {
                    // A timed wait with no other thread allowed to
                    // intervene always times out in a serial execution:
                    // scheduling the thread fires the modelled timeout,
                    // keeping serial behavior deterministic.
                    out.push(cur);
                    return true;
                }
                Status::Blocked(BlockKind::Untimed) if !th.at_boundary => {
                    // Blocked mid-operation: the serial execution is stuck
                    // (paper §2.3: the history `H (o i t) #`).
                    self.end_run(RunOutcome::StuckSerial);
                    return false;
                }
                _ => {}
            }
        }
        // At a boundary (or start/finish): any enabled thread may run next.
        out.extend_from_slice(enabled);
        true
    }

    /// Concurrent mode: all enabled threads are candidates, except that a
    /// yielding thread is descheduled when others are enabled (fairness)
    /// and the preemption bound may pin the current thread. Fills `out`;
    /// always returns `true` (concurrent candidate selection never ends
    /// the run — the signature matches `serial_candidates`).
    fn concurrent_candidates(
        &mut self,
        enabled: &[usize],
        after_yield: bool,
        out: &mut Vec<usize>,
    ) -> bool {
        out.clear();
        if let Some(cur) = self.current {
            if after_yield {
                out.extend(enabled.iter().copied().filter(|&t| t != cur));
                if out.is_empty() {
                    out.push(cur);
                }
                return true;
            }
            // Preemption bound: once the budget is used up, keep running
            // the current thread as long as it is enabled and mid-stream.
            if let Some(bound) = self.config.preemption_bound {
                let th = &self.threads[cur];
                if self.preemptions >= bound && th.status == Status::Runnable && !th.at_boundary {
                    out.push(cur);
                    return true;
                }
            }
        }
        out.extend_from_slice(enabled);
        true
    }

    /// Makes a nondeterministic boolean choice (e.g. for modelled
    /// timeouts); recorded in the schedule.
    pub fn pick_bool(&mut self, me: usize) -> bool {
        let strategy = self.strategy.as_mut().expect("strategy present during run");
        let idx = strategy.choose(2);
        self.decisions.push(idx);
        if let Some(por) = &mut self.por {
            // Keep the slept log parallel to `decisions` (boolean choices
            // never add sleepers).
            por.slept_log.push(0);
        }
        let value = idx == 1;
        self.schedule.push(Choice::Bool(value));
        if self.config.record_accesses {
            self.access_log.push(AccessEvent {
                step: self.step,
                thread: ThreadId(me),
                obj: AccessEvent::NO_OBJ,
                kind: AccessKind::ChoiceBool { value },
                op_index: self.threads[me].op_index,
            });
        }
        value
    }

    /// Declares what thread `t` will do when next scheduled (POR only).
    pub fn set_pending(&mut self, t: usize, pending: Pending) {
        if let Some(por) = &mut self.por {
            por.set_pending(t, pending);
        }
    }

    /// Records a Line-Up history append by the current transition
    /// (POR only): history order is observable, so appends conflict.
    pub fn note_mark(&mut self) {
        if let Some(por) = &mut self.por {
            por.note_mark();
        }
    }

    /// Records that the current transition unblocked thread `t` (POR
    /// only): an enabling happens-before edge and a sleep wake-up.
    pub fn note_wake(&mut self, t: usize) {
        if let Some(por) = &mut self.por {
            por.note_wake(t);
        }
    }

    pub fn set_status(&mut self, t: usize, status: Status) {
        self.threads[t].status = status;
    }

    pub fn status(&self, t: usize) -> Status {
        self.threads[t].status
    }
}
