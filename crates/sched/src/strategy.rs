//! Search strategies: exhaustive DFS with replay (optionally with
//! partial-order reduction), random walk, and fixed replay of a recorded
//! schedule.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::ThreadId;

/// One recorded scheduling decision, for replay and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// The thread scheduled at this point.
    Thread(ThreadId),
    /// A nondeterministic boolean choice.
    Bool(bool),
}

/// The result of a POR-aware thread choice (see
/// [`Strategy::choose_thread_por`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PorChoice {
    /// Index of the chosen thread within the candidate list.
    pub index: usize,
    /// Thread-id bitmask to *add* to the sleep set at this point: the
    /// candidates whose subtrees this node has already fully explored.
    pub slept: u64,
    /// Identifier of the strategy-tree node that made the choice, for
    /// later [`Strategy::add_backtrack`] demands; `None` when the choice
    /// came from a replayed prefix (no backtracking there).
    pub node: Option<usize>,
}

/// A search strategy enumerates the choice tree of the program: at every
/// point with more than one alternative, [`Strategy::choose`] picks one.
///
/// Strategies must be deterministic functions of the choice history within
/// a run so that replayed prefixes reproduce identical executions.
pub trait Strategy {
    /// Called before each run.
    fn begin_run(&mut self);
    /// Picks one of `num_alts >= 2` alternatives (boolean choices use
    /// `num_alts == 2`).
    fn choose(&mut self, num_alts: usize) -> usize;
    /// Picks among candidate *threads*, identified by their ids. The
    /// default implementation delegates to [`Strategy::choose`];
    /// priority-based strategies (like [`PctStrategy`]) override it to
    /// use the identities.
    fn choose_thread(&mut self, candidates: &[usize], _step: usize) -> usize {
        self.choose(candidates.len())
    }
    /// Picks among candidate threads under partial-order reduction:
    /// `cur_sleep` is the runtime's sleep set (thread-id bitmask) at this
    /// point, and the caller guarantees at least one candidate is awake.
    /// POR-aware strategies choose an awake candidate and report the
    /// sleep additions of this node; the default ignores POR entirely.
    fn choose_thread_por(
        &mut self,
        candidates: &[usize],
        _cur_sleep: u64,
        step: usize,
    ) -> PorChoice {
        PorChoice {
            index: self.choose_thread(candidates, step),
            slept: 0,
            node: None,
        }
    }
    /// Demands that `thread` also be explored at strategy-tree node
    /// `node` (a DPOR backtrack point: the run observed a conflict
    /// between `thread`'s current transition and the transition chosen at
    /// `node`). Default: ignored.
    fn add_backtrack(&mut self, _node: usize, _thread: usize) {}
    /// Total number of DPOR backtrack points inserted over the whole
    /// exploration (for [`ExploreStats`](crate::ExploreStats)).
    fn backtrack_points(&self) -> u64 {
        0
    }
    /// Feedback counters of a coverage-guided exploration (see
    /// [`CoverageStrategy`](crate::coverage::CoverageStrategy)), harvested
    /// into [`ExploreStats`](crate::ExploreStats) like
    /// [`backtrack_points`](Strategy::backtrack_points). `None` (the
    /// default) for strategies without coverage feedback.
    fn coverage_counters(&self) -> Option<crate::coverage::CoverageCounters> {
        None
    }
    /// Called after each run; returns `true` if another run should be
    /// executed (i.e. unexplored choices remain).
    fn end_run(&mut self) -> bool;
}

/// Exhaustive depth-first search over the choice tree.
///
/// The strategy keeps the path of decisions of the previous run; each new
/// run replays the prefix and diverges at the deepest decision that still
/// has unexplored alternatives. This is the classic stateless
/// model-checking search of CHESS. With [`DfsStrategy::new_por`] the
/// thread-choice nodes additionally carry DPOR backtrack sets and sleep
/// sets (see the [`por`](crate::por) module): a node only expands
/// candidates demanded by a backtrack point, skips candidates asleep at
/// node entry, and reports its already-explored candidates as sleep
/// additions when replayed.
#[derive(Debug, Default)]
pub struct DfsStrategy {
    path: Vec<DfsNode>,
    cursor: usize,
    por: bool,
    /// With POR: expand every awake candidate instead of only the
    /// backtrack-demanded ones. Used by the frontier region of a parallel
    /// exploration, where demands discovered by workers below the
    /// frontier cannot flow back (sleep sets alone are a complete
    /// reduction; backtrack sets are a further restriction).
    full_expansion: bool,
    backtracks: u64,
    /// Largest decision depth seen, for statistics.
    pub max_depth: usize,
}

#[derive(Debug, Clone)]
enum DfsNode {
    /// A non-thread (boolean) choice: plain exhaustive enumeration.
    /// `stolen` counts the top alternatives handed to work-stealing
    /// thieves ([`DfsStrategy::split_deepest`]); the owner never explores
    /// them. `num_alts` stays untouched so replay still asserts the
    /// program's arity.
    Plain {
        num_alts: usize,
        chosen: usize,
        stolen: usize,
    },
    /// A thread choice under POR.
    Thread(ThreadNode),
}

#[derive(Debug, Clone)]
struct ThreadNode {
    /// The candidate thread ids, in runtime order.
    candidates: Vec<usize>,
    /// Index into `candidates` of the branch being explored.
    chosen: usize,
    /// Thread-id bitmask of candidates whose subtrees are fully explored;
    /// they sleep while the remaining branches run.
    done: u64,
    /// Thread-id bitmask of candidates demanded by DPOR backtrack points
    /// (seeded with the first choice).
    backtrack: u64,
    /// The runtime's sleep set when this node was first reached; those
    /// candidates are never expanded here (their interleavings are covered
    /// where they were put to sleep).
    sleep_entry: u64,
    /// Expand all awake candidates, ignoring `backtrack`.
    full: bool,
    /// Thread-id bitmask of candidates handed to work-stealing thieves
    /// ([`DfsStrategy::split_deepest`]); the owner never expands them.
    stolen: u64,
}

fn bit(t: usize) -> u64 {
    1u64 << t
}

impl ThreadNode {
    /// Advances to the next branch to explore, or `None` to pop: a
    /// candidate not yet done, not asleep at entry, and (unless `full`)
    /// demanded by a backtrack point.
    fn advance(&mut self) -> bool {
        self.done |= bit(self.candidates[self.chosen]);
        let next = self.candidates.iter().position(|&t| {
            self.done & bit(t) == 0
                && self.sleep_entry & bit(t) == 0
                && self.stolen & bit(t) == 0
                && (self.full || self.backtrack & bit(t) != 0)
        });
        match next {
            Some(i) => {
                self.chosen = i;
                true
            }
            None => false,
        }
    }

    /// Whether candidate thread `t` still has an unexplored branch here
    /// under full expansion. Split points are promoted to `full` before
    /// this is consulted, so the backtrack set is deliberately ignored:
    /// once a subtree is given away, demands discovered by the thief can
    /// no longer flow back to the victim, and expanding every awake
    /// candidate (sleep sets alone are a complete reduction) keeps the
    /// partition sound.
    fn splittable(&self, t: usize) -> bool {
        self.done & bit(t) == 0 && self.sleep_entry & bit(t) == 0 && self.stolen & bit(t) == 0
    }

    /// The candidate position a thief would take: the branch the serial
    /// DFS would explore *last*. The currently running branch finishes
    /// first, then the remaining awake candidates in candidate order, so
    /// the last is the highest-position splittable candidate other than
    /// `chosen`.
    fn steal_position(&self) -> Option<usize> {
        (0..self.candidates.len())
            .rev()
            .find(|&p| p != self.chosen && self.splittable(self.candidates[p]))
    }
}

/// A subtree carved off a live DFS by [`DfsStrategy::split_deepest`]: the
/// decision prefix addressing it plus the per-decision sleep masks a serial
/// DFS would have accumulated on entry, so a thief exploring it with
/// [`PrefixDfsStrategy::new_por`] reproduces exactly the serial reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StolenSubtree {
    /// Decision indexes from the root down to (and including) the stolen
    /// branch.
    pub prefix: Vec<usize>,
    /// Sleep mask to re-install at each prefix decision (0 for non-thread
    /// choices).
    pub sleep: Vec<u64>,
}

impl DfsStrategy {
    /// Creates a fresh DFS over an unexplored tree, without reduction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a DFS with partial-order reduction (sleep sets + DPOR
    /// backtracking) on its thread-choice nodes.
    pub fn new_por() -> Self {
        DfsStrategy {
            por: true,
            ..Self::default()
        }
    }

    /// Splits off the subtree at the *deepest* unexplored branch point of
    /// the committed path, for a work-stealing thief. Call only between
    /// runs (after [`Strategy::end_run`] returned `true`); returns `None`
    /// when no node on the path has a branch to give away.
    ///
    /// The stolen branch is the one the serial DFS would have explored
    /// *last* at that node, so the thief's sleep mask there is the mask
    /// the serial DFS would have had: everything already done, plus the
    /// branch currently being explored, plus every other still-awake
    /// branch the victim will explore first. Thread nodes on the path down
    /// to the split point are promoted to full expansion (see
    /// [`ThreadNode::splittable`]) *before* the stolen branch is chosen,
    /// so the candidate set can only shrink afterwards and the
    /// stolen-branch-is-last invariant holds for the rest of the victim's
    /// exploration.
    pub fn split_deepest(&mut self) -> Option<StolenSubtree> {
        let split = (0..self.path.len()).rev().find(|&i| match &self.path[i] {
            DfsNode::Plain {
                num_alts,
                chosen,
                stolen,
            } => chosen + 1 < num_alts - stolen,
            DfsNode::Thread(tn) => tn.steal_position().is_some(),
        })?;
        let mut prefix = Vec::with_capacity(split + 1);
        let mut sleep = Vec::with_capacity(split + 1);
        for node in &mut self.path[..split] {
            match node {
                DfsNode::Plain { chosen, .. } => {
                    prefix.push(*chosen);
                    sleep.push(0);
                }
                DfsNode::Thread(tn) => {
                    tn.full = true;
                    prefix.push(tn.chosen);
                    sleep.push(tn.done);
                }
            }
        }
        match &mut self.path[split] {
            DfsNode::Plain {
                num_alts, stolen, ..
            } => {
                // Give away the highest not-yet-stolen alternative: the
                // serial DFS explores alternatives in increasing order, so
                // it is the last one.
                let idx = *num_alts - 1 - *stolen;
                *stolen += 1;
                prefix.push(idx);
                sleep.push(0);
            }
            DfsNode::Thread(tn) => {
                tn.full = true;
                let pos = tn.steal_position().expect("checked splittable above");
                let thief_thread = tn.candidates[pos];
                // Everything the victim explores before the stolen branch
                // sleeps inside it, exactly as in the serial order.
                let mut mask = tn.done;
                for &t in &tn.candidates {
                    if tn.splittable(t) && t != thief_thread {
                        mask |= bit(t);
                    }
                }
                mask |= bit(tn.candidates[tn.chosen]);
                tn.stolen |= bit(thief_thread);
                prefix.push(pos);
                sleep.push(mask);
            }
        }
        Some(StolenSubtree { prefix, sleep })
    }

    /// The decision vector of the run that just finished: the chosen
    /// alternative index at every node on the current path, in the same
    /// encoding the explorer records per run. Cancellation protocols use
    /// it to decide whether an asynchronous abandon request still applies
    /// to the position the strategy has advanced to (the request may have
    /// been raised against a run the strategy already moved past).
    pub fn current_decisions(&self) -> Vec<usize> {
        self.path
            .iter()
            .map(|node| match node {
                DfsNode::Plain { chosen, .. } => *chosen,
                DfsNode::Thread(tn) => tn.chosen,
            })
            .collect()
    }
}

impl Strategy for DfsStrategy {
    fn begin_run(&mut self) {
        self.cursor = 0;
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        debug_assert!(num_alts >= 2);
        if self.cursor < self.path.len() {
            let DfsNode::Plain {
                num_alts: n,
                chosen,
                ..
            } = self.path[self.cursor]
            else {
                panic!(
                    "nondeterministic replay: a thread choice became a \
                     boolean choice given the same schedule prefix"
                );
            };
            assert_eq!(
                n, num_alts,
                "nondeterministic replay: the program must make the same \
                 choices given the same schedule prefix"
            );
            self.cursor += 1;
            chosen
        } else {
            self.path.push(DfsNode::Plain {
                num_alts,
                chosen: 0,
                stolen: 0,
            });
            self.cursor += 1;
            self.max_depth = self.max_depth.max(self.path.len());
            0
        }
    }

    fn choose_thread_por(
        &mut self,
        candidates: &[usize],
        cur_sleep: u64,
        step: usize,
    ) -> PorChoice {
        if !self.por && cur_sleep == 0 {
            return PorChoice {
                index: self.choose_thread(candidates, step),
                slept: 0,
                node: None,
            };
        }
        // POR on, or a symmetry mask on a non-POR DFS (the scheduler folds
        // symmetry-masked siblings into `cur_sleep`): a thread node
        // enumerates only unmasked candidates. Symmetry masks are a
        // deterministic function of the decision prefix, so a node created
        // with a mask is revisited with the same mask. Without POR there
        // are no backtrack demands, so such nodes must expand fully.
        if self.cursor < self.path.len() {
            let node_id = self.cursor;
            let DfsNode::Thread(tn) = &self.path[node_id] else {
                panic!(
                    "nondeterministic replay: a boolean choice became a \
                     thread choice given the same schedule prefix"
                );
            };
            assert_eq!(
                tn.candidates, candidates,
                "nondeterministic replay: the candidate threads must match \
                 given the same schedule prefix"
            );
            debug_assert_eq!(
                tn.sleep_entry, cur_sleep,
                "sleep and symmetry masks must replay deterministically"
            );
            self.cursor += 1;
            PorChoice {
                index: tn.chosen,
                slept: tn.done,
                node: Some(node_id),
            }
        } else {
            let chosen = candidates
                .iter()
                .position(|&t| cur_sleep & bit(t) == 0)
                .expect("caller guarantees an awake candidate");
            self.path.push(DfsNode::Thread(ThreadNode {
                candidates: candidates.to_vec(),
                chosen,
                done: 0,
                backtrack: bit(candidates[chosen]),
                sleep_entry: cur_sleep,
                full: self.full_expansion || !self.por,
                stolen: 0,
            }));
            self.cursor += 1;
            self.max_depth = self.max_depth.max(self.path.len());
            PorChoice {
                index: chosen,
                slept: 0,
                node: Some(self.path.len() - 1),
            }
        }
    }

    fn add_backtrack(&mut self, node: usize, thread: usize) {
        let DfsNode::Thread(tn) = &mut self.path[node] else {
            return;
        };
        // FG-DPOR: demand `thread` where it was a candidate; otherwise
        // (it was excluded, e.g. right after its own yield) demand every
        // candidate so no reordering is lost.
        let wanted = if tn.candidates.contains(&thread) {
            bit(thread)
        } else {
            tn.candidates.iter().fold(0u64, |m, &t| m | bit(t))
        };
        let added = wanted & !tn.backtrack;
        if added != 0 {
            tn.backtrack |= added;
            self.backtracks += u64::from(added.count_ones());
        }
    }

    fn backtrack_points(&self) -> u64 {
        self.backtracks
    }

    fn end_run(&mut self) -> bool {
        debug_assert_eq!(
            self.cursor,
            self.path.len(),
            "run must consume its whole path"
        );
        while let Some(last) = self.path.last_mut() {
            match last {
                DfsNode::Plain {
                    num_alts,
                    chosen,
                    stolen,
                } => {
                    if *chosen + 1 < *num_alts - *stolen {
                        *chosen += 1;
                        return true;
                    }
                }
                DfsNode::Thread(tn) => {
                    if tn.advance() {
                        return true;
                    }
                }
            }
            self.path.pop();
        }
        false
    }
}

/// Uniform random walk: every choice is picked uniformly at random.
///
/// Used for quick bug hunting on tests too large for exhaustive search;
/// Line-Up's completeness guarantee (Theorem 5) is unaffected because any
/// violation found is still a real violation, but passing loses the
/// exhaustiveness of phase 2.
#[derive(Debug)]
pub struct RandomStrategy {
    rng: SmallRng,
    runs_left: u64,
}

impl RandomStrategy {
    /// Creates a random walk with the given seed performing `runs` runs.
    pub fn new(seed: u64, runs: u64) -> Self {
        RandomStrategy {
            rng: SmallRng::seed_from_u64(seed),
            runs_left: runs,
        }
    }
}

impl Strategy for RandomStrategy {
    fn begin_run(&mut self) {}

    fn choose(&mut self, num_alts: usize) -> usize {
        self.rng.gen_range(0..num_alts)
    }

    fn end_run(&mut self) -> bool {
        self.runs_left = self.runs_left.saturating_sub(1);
        self.runs_left > 0
    }
}

/// Replays a fixed schedule once (e.g. to re-execute a violating run for
/// debugging). Thread choices are resolved by matching the recorded thread
/// against the candidate list, so the replay tolerates recorded singleton
/// decisions that the runtime does not consult the strategy for.
#[derive(Debug)]
pub struct ReplayStrategy {
    choices: Vec<usize>,
    cursor: usize,
}

impl ReplayStrategy {
    /// Creates a replay of raw alternative indexes, in decision order.
    pub fn from_indexes(choices: Vec<usize>) -> Self {
        ReplayStrategy { choices, cursor: 0 }
    }
}

impl Strategy for ReplayStrategy {
    fn begin_run(&mut self) {
        self.cursor = 0;
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        let idx = self.choices.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        idx.min(num_alts - 1)
    }

    fn end_run(&mut self) -> bool {
        false
    }
}

/// Depth-first search restricted to the subtree rooted at a fixed decision
/// prefix: every run replays the prefix verbatim, and the DFS explores only
/// the decisions beyond it.
///
/// This is the unit of work of the parallel phase-2 exploration: the
/// schedule tree is partitioned into disjoint subtrees by the frontier
/// prefixes enumerated by [`FrontierStrategy`], and each worker explores
/// one subtree with this strategy. The union of the runs over all frontier
/// prefixes is exactly the set of runs a plain [`DfsStrategy`] performs,
/// each exactly once.
#[derive(Debug)]
pub struct PrefixDfsStrategy {
    prefix: Vec<usize>,
    /// Sleep-set masks to re-install along the prefix (parallel to
    /// `prefix`; missing entries mean no sleep additions). Recorded by the
    /// frontier enumeration so the worker's subtree inherits exactly the
    /// sleep set a serial exploration would have at the subtree root.
    sleep: Vec<u64>,
    cursor: usize,
    dfs: DfsStrategy,
}

impl PrefixDfsStrategy {
    /// Creates a DFS over the subtree rooted at `prefix` (raw alternative
    /// indexes, in decision order, as recorded in
    /// [`RunResult::decisions`](crate::RunResult)).
    pub fn new(prefix: Vec<usize>) -> Self {
        PrefixDfsStrategy {
            prefix,
            sleep: Vec::new(),
            cursor: 0,
            dfs: DfsStrategy::new(),
        }
    }

    /// Creates a POR-enabled subtree DFS: the prefix re-installs the given
    /// per-decision sleep masks, and the DFS beyond it uses sleep sets and
    /// DPOR backtracking.
    pub fn new_por(prefix: Vec<usize>, sleep: Vec<u64>) -> Self {
        PrefixDfsStrategy {
            prefix,
            sleep,
            cursor: 0,
            dfs: DfsStrategy::new_por(),
        }
    }

    /// The fixed decision prefix identifying this subtree.
    pub fn prefix(&self) -> &[usize] {
        &self.prefix
    }

    /// Splits off the deepest unexplored branch point of the inner DFS
    /// (see [`DfsStrategy::split_deepest`]), re-rooting the stolen subtree
    /// at the tree root by prepending this strategy's own prefix and sleep
    /// masks. Call only between runs.
    pub fn split_deepest(&mut self) -> Option<StolenSubtree> {
        let sub = self.dfs.split_deepest()?;
        let mut prefix = self.prefix.clone();
        let mut sleep = self.sleep.clone();
        sleep.resize(prefix.len(), 0);
        prefix.extend(sub.prefix);
        sleep.extend(sub.sleep);
        Some(StolenSubtree { prefix, sleep })
    }

    /// The full decision vector of the run that just finished: the fixed
    /// prefix followed by the inner DFS's current path (see
    /// [`DfsStrategy::current_decisions`]).
    pub fn current_decisions(&self) -> Vec<usize> {
        let mut decisions = self.prefix.clone();
        decisions.extend(self.dfs.current_decisions());
        decisions
    }
}

impl Strategy for PrefixDfsStrategy {
    fn begin_run(&mut self) {
        self.cursor = 0;
        self.dfs.begin_run();
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        if self.cursor < self.prefix.len() {
            let idx = self.prefix[self.cursor];
            self.cursor += 1;
            debug_assert!(
                idx < num_alts,
                "prefix decision out of range: the prefix must come from a \
                 frontier run of the same deterministic program"
            );
            idx.min(num_alts - 1)
        } else {
            self.dfs.choose(num_alts)
        }
    }

    fn choose_thread_por(
        &mut self,
        candidates: &[usize],
        cur_sleep: u64,
        step: usize,
    ) -> PorChoice {
        if self.cursor < self.prefix.len() {
            let idx = self.prefix[self.cursor];
            let slept = self.sleep.get(self.cursor).copied().unwrap_or(0);
            self.cursor += 1;
            debug_assert!(
                idx < candidates.len(),
                "prefix decision out of range: the prefix must come from a \
                 frontier run of the same deterministic program"
            );
            PorChoice {
                index: idx.min(candidates.len() - 1),
                slept,
                node: None,
            }
        } else {
            self.dfs.choose_thread_por(candidates, cur_sleep, step)
        }
    }

    fn add_backtrack(&mut self, node: usize, thread: usize) {
        // Demands targeting the prefix region carry `node: None` and never
        // reach here; the frontier enumeration expands every awake
        // candidate there, so nothing is lost.
        self.dfs.add_backtrack(node, thread);
    }

    fn backtrack_points(&self) -> u64 {
        self.dfs.backtrack_points()
    }

    fn end_run(&mut self) -> bool {
        self.dfs.end_run()
    }
}

/// Enumerates the *frontier* of the choice tree: a DFS that backtracks only
/// within the first `limit` decisions of each run and always takes the
/// first alternative beyond them.
///
/// Each run's first `min(decisions, limit)` decision indexes form one
/// frontier prefix; across the whole exploration the prefixes are pairwise
/// disjoint subtree roots that jointly cover the tree. Runs with fewer than
/// `limit` decisions contribute their full decision list (a singleton
/// subtree).
#[derive(Debug)]
pub struct FrontierStrategy {
    limit: usize,
    por: bool,
    path: Vec<DfsNode>,
    cursor: usize,
}

impl FrontierStrategy {
    /// Creates a frontier enumeration splitting at depth `limit`.
    pub fn new(limit: usize) -> Self {
        FrontierStrategy {
            limit,
            por: false,
            path: Vec::new(),
            cursor: 0,
        }
    }

    /// Creates a POR-enabled frontier enumeration: within the frontier,
    /// thread-choice nodes carry sleep sets and expand every *awake*
    /// candidate (no backtrack-set restriction — demands from workers
    /// exploring below the frontier cannot flow back, and sleep sets
    /// alone are a complete reduction); beyond it, the first awake
    /// candidate is taken. The per-decision sleep additions end up in
    /// [`RunResult::slept`](crate::RunResult) for the workers to inherit.
    pub fn new_por(limit: usize) -> Self {
        FrontierStrategy {
            limit,
            por: true,
            path: Vec::new(),
            cursor: 0,
        }
    }
}

impl Strategy for FrontierStrategy {
    fn begin_run(&mut self) {
        self.cursor = 0;
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        debug_assert!(num_alts >= 2);
        if self.cursor < self.path.len() {
            let DfsNode::Plain {
                num_alts: n,
                chosen,
                ..
            } = self.path[self.cursor]
            else {
                panic!(
                    "nondeterministic replay: a thread choice became a \
                     boolean choice given the same schedule prefix"
                );
            };
            assert_eq!(
                n, num_alts,
                "nondeterministic replay: the program must make the same \
                 choices given the same schedule prefix"
            );
            self.cursor += 1;
            chosen
        } else if self.cursor < self.limit {
            self.path.push(DfsNode::Plain {
                num_alts,
                chosen: 0,
                stolen: 0,
            });
            self.cursor += 1;
            0
        } else {
            // Beyond the frontier: always the first alternative, without
            // recording a backtrack point.
            self.cursor += 1;
            0
        }
    }

    fn choose_thread_por(
        &mut self,
        candidates: &[usize],
        cur_sleep: u64,
        step: usize,
    ) -> PorChoice {
        // As in `DfsStrategy`: a non-zero mask without POR means symmetry
        // masked some siblings, which a frontier node must honor too.
        if !self.por && cur_sleep == 0 {
            return PorChoice {
                index: self.choose_thread(candidates, step),
                slept: 0,
                node: None,
            };
        }
        if self.cursor < self.path.len() {
            let node_id = self.cursor;
            let DfsNode::Thread(tn) = &self.path[node_id] else {
                panic!(
                    "nondeterministic replay: a boolean choice became a \
                     thread choice given the same schedule prefix"
                );
            };
            assert_eq!(
                tn.candidates, candidates,
                "nondeterministic replay: the candidate threads must match \
                 given the same schedule prefix"
            );
            self.cursor += 1;
            PorChoice {
                index: tn.chosen,
                slept: tn.done,
                node: None,
            }
        } else {
            let chosen = candidates
                .iter()
                .position(|&t| cur_sleep & bit(t) == 0)
                .expect("caller guarantees an awake candidate");
            if self.cursor < self.limit {
                self.path.push(DfsNode::Thread(ThreadNode {
                    candidates: candidates.to_vec(),
                    chosen,
                    done: 0,
                    backtrack: bit(candidates[chosen]),
                    sleep_entry: cur_sleep,
                    full: true,
                    stolen: 0,
                }));
            }
            self.cursor += 1;
            PorChoice {
                index: chosen,
                slept: 0,
                node: None,
            }
        }
    }

    fn end_run(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            match last {
                DfsNode::Plain {
                    num_alts,
                    chosen,
                    stolen,
                } => {
                    if *chosen + 1 < *num_alts - *stolen {
                        *chosen += 1;
                        return true;
                    }
                }
                DfsNode::Thread(tn) => {
                    if tn.advance() {
                        return true;
                    }
                }
            }
            self.path.pop();
        }
        false
    }
}

/// Probabilistic concurrency testing (PCT): assigns each thread a random
/// priority, always runs the highest-priority candidate, and lowers the
/// running priority at `depth − 1` randomly chosen steps.
///
/// PCT (Burckhardt, Kothari, Musuvathi, Nagarakatte, ASPLOS 2010 — by the
/// Line-Up authors) guarantees that a bug requiring `d` ordering
/// constraints within `k` steps is found with probability ≥ 1/(n·k^{d−1})
/// per run, typically far better than uniform random walk. Included here
/// as an alternative phase-2 search for tests too large to explore
/// exhaustively.
#[derive(Debug)]
pub struct PctStrategy {
    rng: SmallRng,
    runs_left: u64,
    /// Estimated schedule length, used to sample priority-change points;
    /// adapted to the longest run seen so far.
    est_steps: usize,
    depth: usize,
    priorities: Vec<u64>,
    change_points: Vec<usize>,
    next_change: usize,
    step: usize,
}

impl PctStrategy {
    /// Creates a PCT search with the given seed, bug depth (number of
    /// priority-change points + 1), and run budget.
    pub fn new(seed: u64, depth: usize, runs: u64) -> Self {
        let mut s = PctStrategy {
            rng: SmallRng::seed_from_u64(seed),
            runs_left: runs,
            est_steps: 64,
            depth: depth.max(1),
            priorities: Vec::new(),
            change_points: Vec::new(),
            next_change: 0,
            step: 0,
        };
        s.reseed_run();
        s
    }

    fn reseed_run(&mut self) {
        self.priorities.clear();
        self.step = 0;
        self.next_change = 0;
        self.change_points = (0..self.depth.saturating_sub(1))
            .map(|_| self.rng.gen_range(0..self.est_steps.max(1)))
            .collect();
        self.change_points.sort_unstable();
    }

    fn priority(&mut self, thread: usize) -> u64 {
        while self.priorities.len() <= thread {
            // High random priorities; change points assign low ones.
            let p = self.rng.gen_range(1_000_000..2_000_000);
            self.priorities.push(p);
        }
        self.priorities[thread]
    }
}

impl Strategy for PctStrategy {
    fn begin_run(&mut self) {
        self.reseed_run();
    }

    fn choose(&mut self, num_alts: usize) -> usize {
        // Non-thread (boolean) choices are sampled uniformly.
        self.rng.gen_range(0..num_alts)
    }

    fn choose_thread(&mut self, candidates: &[usize], _step: usize) -> usize {
        self.step += 1;
        // Pick the highest-priority candidate.
        let (mut best_idx, mut best_p) = (0, 0u64);
        for (i, &t) in candidates.iter().enumerate() {
            let p = self.priority(t);
            if p > best_p {
                best_p = p;
                best_idx = i;
            }
        }
        // At a change point, demote the would-be winner and re-pick.
        // Successive change points assign *decreasing* priorities, so a
        // thread demoted later sinks below threads demoted earlier —
        // enabling alternation patterns (A runs, B runs, A runs, …).
        while self.next_change < self.change_points.len()
            && self.step > self.change_points[self.next_change]
        {
            let demoted = candidates[best_idx];
            self.priorities[demoted] = (self.depth - 1 - self.next_change) as u64;
            self.next_change += 1;
            let (mut idx, mut p) = (0, 0u64);
            for (i, &t) in candidates.iter().enumerate() {
                let pt = self.priority(t);
                if pt > p {
                    p = pt;
                    idx = i;
                }
            }
            best_idx = idx;
        }
        best_idx
    }

    fn end_run(&mut self) -> bool {
        self.est_steps = self.est_steps.max(self.step);
        self.runs_left = self.runs_left.saturating_sub(1);
        self.runs_left > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a DFS strategy through a synthetic choice tree where every
    /// run makes `depth` binary choices; checks that all 2^depth leaves
    /// are visited exactly once.
    #[test]
    fn dfs_enumerates_binary_tree() {
        let mut dfs = DfsStrategy::new();
        let depth = 4;
        let mut seen = std::collections::HashSet::new();
        loop {
            dfs.begin_run();
            let mut leaf = 0usize;
            for _ in 0..depth {
                leaf = (leaf << 1) | dfs.choose(2);
            }
            assert!(seen.insert(leaf), "leaf visited twice: {leaf:#b}");
            if !dfs.end_run() {
                break;
            }
        }
        assert_eq!(seen.len(), 1 << depth);
    }

    /// A tree with varying arity per level.
    #[test]
    fn dfs_enumerates_mixed_arity_tree() {
        let mut dfs = DfsStrategy::new();
        let arities = [3usize, 2, 4];
        let mut count = 0;
        loop {
            dfs.begin_run();
            for &a in &arities {
                let c = dfs.choose(a);
                assert!(c < a);
            }
            count += 1;
            if !dfs.end_run() {
                break;
            }
        }
        assert_eq!(count, 3 * 2 * 4);
    }

    /// The number of choices may depend on earlier choices (like enabled
    /// sets depend on the schedule); DFS must still visit every leaf.
    #[test]
    fn dfs_enumerates_dependent_tree() {
        let mut dfs = DfsStrategy::new();
        let mut count = 0;
        loop {
            dfs.begin_run();
            let first = dfs.choose(2);
            if first == 0 {
                dfs.choose(3);
            } else {
                dfs.choose(2);
                dfs.choose(2);
            }
            count += 1;
            if !dfs.end_run() {
                break;
            }
        }
        // 3 leaves under first=0, 4 leaves under first=1.
        assert_eq!(count, 7);
    }

    #[test]
    fn dfs_single_run_when_no_choices() {
        let mut dfs = DfsStrategy::new();
        dfs.begin_run();
        assert!(!dfs.end_run());
    }

    #[test]
    #[should_panic(expected = "nondeterministic replay")]
    fn dfs_detects_nondeterministic_replay() {
        let mut dfs = DfsStrategy::new();
        dfs.begin_run();
        dfs.choose(2);
        dfs.choose(2);
        assert!(dfs.end_run());
        dfs.begin_run();
        dfs.choose(3); // arity changed: the program was not deterministic
    }

    #[test]
    fn random_respects_run_budget() {
        let mut r = RandomStrategy::new(42, 3);
        r.begin_run();
        let c = r.choose(5);
        assert!(c < 5);
        assert!(r.end_run());
        assert!(r.end_run());
        assert!(!r.end_run());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = RandomStrategy::new(7, 100);
        let mut b = RandomStrategy::new(7, 100);
        for _ in 0..50 {
            assert_eq!(a.choose(4), b.choose(4));
        }
    }

    #[test]
    fn pct_always_picks_a_candidate() {
        let mut pct = PctStrategy::new(9, 3, 10);
        for _ in 0..3 {
            pct.begin_run();
            for step in 0..30 {
                let cands = [0usize, 1, 2];
                let idx = pct.choose_thread(&cands, step);
                assert!(idx < cands.len());
            }
            pct.end_run();
        }
    }

    #[test]
    fn pct_respects_run_budget() {
        let mut pct = PctStrategy::new(1, 2, 2);
        pct.begin_run();
        assert!(pct.end_run());
        assert!(!pct.end_run());
    }

    #[test]
    fn pct_is_priority_stable_within_a_run() {
        // Without change points (depth 1), the same candidate set always
        // yields the same winner within one run.
        let mut pct = PctStrategy::new(4, 1, 10);
        pct.begin_run();
        let cands = [0usize, 1, 2, 3];
        let first = pct.choose_thread(&cands, 0);
        for step in 1..20 {
            assert_eq!(pct.choose_thread(&cands, step), first);
        }
    }

    #[test]
    fn replay_follows_and_clamps() {
        let mut r = ReplayStrategy::from_indexes(vec![1, 5]);
        r.begin_run();
        assert_eq!(r.choose(2), 1);
        assert_eq!(r.choose(3), 2); // clamped to num_alts - 1
        assert_eq!(r.choose(2), 0); // exhausted: defaults to 0
        assert!(!r.end_run());
    }

    /// Drives a strategy through a synthetic fixed-arity tree and returns
    /// every visited leaf as its decision path.
    fn collect_leaves(strategy: &mut dyn Strategy, arities: &[usize]) -> Vec<Vec<usize>> {
        let mut leaves = Vec::new();
        loop {
            strategy.begin_run();
            let mut path = Vec::new();
            for &a in arities {
                path.push(strategy.choose(a));
            }
            leaves.push(path);
            if !strategy.end_run() {
                break;
            }
        }
        leaves
    }

    #[test]
    fn prefix_dfs_explores_exactly_its_subtree() {
        let arities = [2usize, 3, 2];
        let mut sub = PrefixDfsStrategy::new(vec![1, 2]);
        let leaves = collect_leaves(&mut sub, &arities);
        assert_eq!(leaves, vec![vec![1, 2, 0], vec![1, 2, 1]]);
    }

    #[test]
    fn prefix_dfs_with_empty_prefix_equals_plain_dfs() {
        let arities = [2usize, 2, 3];
        let dfs_leaves = collect_leaves(&mut DfsStrategy::new(), &arities);
        let sub_leaves = collect_leaves(&mut PrefixDfsStrategy::new(Vec::new()), &arities);
        assert_eq!(dfs_leaves, sub_leaves);
    }

    #[test]
    fn prefix_dfs_leaf_subtree_runs_once() {
        // A prefix covering every decision of the run: one run, no more.
        let mut sub = PrefixDfsStrategy::new(vec![1, 0]);
        sub.begin_run();
        assert_eq!(sub.choose(2), 1);
        assert_eq!(sub.choose(2), 0);
        assert!(!sub.end_run());
    }

    #[test]
    fn frontier_enumerates_disjoint_covering_prefixes() {
        let arities = [2usize, 3, 2];
        let mut frontier = FrontierStrategy::new(2);
        let prefixes: Vec<Vec<usize>> = collect_leaves(&mut frontier, &arities)
            .into_iter()
            .map(|leaf| leaf[..2].to_vec())
            .collect();
        // All 2×3 depth-2 paths, each exactly once, in DFS order.
        let expected: Vec<Vec<usize>> = (0..2)
            .flat_map(|a| (0..3).map(move |b| vec![a, b]))
            .collect();
        assert_eq!(prefixes, expected);
    }

    #[test]
    fn frontier_deeper_than_tree_yields_full_paths() {
        let arities = [2usize, 2];
        let mut frontier = FrontierStrategy::new(10);
        let leaves = collect_leaves(&mut frontier, &arities);
        let dfs_leaves = collect_leaves(&mut DfsStrategy::new(), &arities);
        assert_eq!(leaves, dfs_leaves);
    }

    /// The partition property the parallel exploration relies on: the
    /// subtree explorations over all frontier prefixes together visit
    /// exactly the leaves of the plain DFS, each exactly once, and
    /// concatenating them in prefix order reproduces the DFS order.
    #[test]
    fn frontier_plus_prefix_dfs_partitions_the_tree() {
        // A dependent tree: later arities depend on earlier choices.
        fn run(strategy: &mut dyn Strategy) -> Vec<usize> {
            let mut path = Vec::new();
            let first = strategy.choose(3);
            path.push(first);
            if first == 0 {
                path.push(strategy.choose(2));
                path.push(strategy.choose(2));
            } else {
                path.push(strategy.choose(4));
            }
            path
        }
        fn collect(strategy: &mut dyn Strategy) -> Vec<Vec<usize>> {
            let mut leaves = Vec::new();
            loop {
                strategy.begin_run();
                leaves.push(run(strategy));
                if !strategy.end_run() {
                    break;
                }
            }
            leaves
        }
        let serial = collect(&mut DfsStrategy::new());

        let depth = 2;
        let prefixes: Vec<Vec<usize>> = collect(&mut FrontierStrategy::new(depth))
            .into_iter()
            .map(|leaf| leaf[..leaf.len().min(depth)].to_vec())
            .collect();
        let mut combined = Vec::new();
        for prefix in prefixes {
            combined.extend(collect(&mut PrefixDfsStrategy::new(prefix)));
        }
        assert_eq!(combined, serial);
    }

    /// The dependent-arity tree used by the split tests: later arities
    /// depend on earlier choices, like a real schedule tree.
    fn dependent_run(strategy: &mut dyn Strategy) -> Vec<usize> {
        let mut path = Vec::new();
        let first = strategy.choose(3);
        path.push(first);
        if first == 0 {
            path.push(strategy.choose(2));
            path.push(strategy.choose(2));
        } else {
            path.push(strategy.choose(4));
            if path[1] >= 2 {
                path.push(strategy.choose(3));
            }
        }
        path
    }

    fn collect_dependent(strategy: &mut dyn Strategy) -> Vec<Vec<usize>> {
        let mut leaves = Vec::new();
        loop {
            strategy.begin_run();
            leaves.push(dependent_run(strategy));
            if !strategy.end_run() {
                break;
            }
        }
        leaves
    }

    /// The partition property work stealing relies on: a victim that gives
    /// away its deepest unexplored branch after every run, plus thieves
    /// exploring the stolen subtrees, together visit exactly the serial
    /// DFS leaves, each exactly once.
    #[test]
    fn split_deepest_partitions_a_dependent_tree() {
        let serial = collect_dependent(&mut DfsStrategy::new());

        let mut victim = DfsStrategy::new();
        let mut stolen = Vec::new();
        let mut combined = Vec::new();
        loop {
            victim.begin_run();
            combined.push(dependent_run(&mut victim));
            if !victim.end_run() {
                break;
            }
            if let Some(sub) = victim.split_deepest() {
                stolen.push(sub);
            }
        }
        for sub in stolen {
            combined.extend(collect_dependent(&mut PrefixDfsStrategy::new(sub.prefix)));
        }

        let mut seen = combined.clone();
        seen.sort();
        let deduped = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), deduped, "no leaf visited twice");
        let mut expected = serial;
        expected.sort();
        assert_eq!(seen, expected);
    }

    /// Stealing until the victim has nothing left to give still partitions
    /// the tree: the victim keeps only the branch it is currently on.
    #[test]
    fn split_until_dry_partitions_the_tree() {
        let serial = collect_dependent(&mut DfsStrategy::new());

        let mut victim = DfsStrategy::new();
        let mut combined = Vec::new();
        let mut stolen = Vec::new();
        loop {
            victim.begin_run();
            combined.push(dependent_run(&mut victim));
            if !victim.end_run() {
                break;
            }
            while let Some(sub) = victim.split_deepest() {
                stolen.push(sub);
            }
        }
        // Thieves may themselves be split mid-exploration.
        while let Some(sub) = stolen.pop() {
            let mut thief = PrefixDfsStrategy::new(sub.prefix);
            loop {
                thief.begin_run();
                combined.push(dependent_run(&mut thief));
                if !thief.end_run() {
                    break;
                }
                if let Some(sub) = thief.split_deepest() {
                    stolen.push(sub);
                }
            }
        }

        let mut seen = combined.clone();
        seen.sort();
        let len = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), len, "no leaf visited twice");
        let mut expected = serial;
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_with_nothing_left_returns_none() {
        let mut dfs = DfsStrategy::new();
        dfs.begin_run();
        dfs.choose(2);
        assert!(dfs.end_run());
        // end_run committed the last alternative; nothing left to give.
        assert_eq!(dfs.split_deepest(), None);
    }

    /// A POR split ships the sleep mask the serial DFS would have had at
    /// the stolen branch: everything already explored, plus the branch the
    /// victim is on, plus every other awake branch the victim explores
    /// first.
    #[test]
    fn split_por_node_ships_serial_sleep_mask() {
        let mut victim = DfsStrategy::new_por();
        victim.begin_run();
        let c = victim.choose_thread_por(&[0, 1, 2], 0, 0);
        assert_eq!((c.index, c.slept), (0, 0));
        // Conflicts demand the other two branches.
        victim.add_backtrack(c.node.unwrap(), 1);
        victim.add_backtrack(c.node.unwrap(), 2);
        assert!(victim.end_run());

        // Victim is now on branch 1; the serial DFS would explore branch 2
        // last, so that is what a thief gets, sleeping {0, 1}.
        let sub = victim.split_deepest().expect("branch 2 is stealable");
        assert_eq!(sub.prefix, vec![2]);
        assert_eq!(sub.sleep, vec![bit(0) | bit(1)]);
        // Nothing else to steal at this node.
        assert_eq!(victim.split_deepest(), None);

        // The victim replays branch 1 with branch 0 asleep, then stops:
        // branch 2 now belongs to the thief.
        victim.begin_run();
        let c = victim.choose_thread_por(&[0, 1, 2], 0, 0);
        assert_eq!((c.index, c.slept), (1, bit(0)));
        assert!(!victim.end_run());
    }

    #[test]
    fn prefix_dfs_split_reroots_at_the_tree_root() {
        let mut victim = PrefixDfsStrategy::new_por(vec![1], vec![bit(7)]);
        victim.begin_run();
        assert_eq!(victim.choose(2), 1);
        assert_eq!(victim.choose(3), 0);
        assert!(victim.end_run());
        let sub = victim.split_deepest().expect("alternative 2 is stealable");
        assert_eq!(sub.prefix, vec![1, 2]);
        assert_eq!(sub.sleep, vec![bit(7), 0]);
        // Victim explores the remaining middle alternative, then stops.
        victim.begin_run();
        assert_eq!(victim.choose(2), 1);
        assert_eq!(victim.choose(3), 1);
        assert!(!victim.end_run());
    }
}
