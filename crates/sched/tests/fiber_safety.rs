//! Fiber stack safety (ISSUE acceptance): a virtual thread that recurses
//! past its fiber stack is stopped *by the checker* with an actionable
//! diagnostic — at a schedule point, long before the guard page — and the
//! stack size is configurable through [`Config::with_fiber_stack_size`],
//! so the same program completes on a larger stack.

use std::ops::ControlFlow;

use lineup_sched::{explore, fiber, op_boundary, Backend, Config, RunOutcome};

/// Burns ~`PAD` bytes of fiber stack per level, touching a schedule point
/// at every step so the red-zone check sees the depth grow.
#[inline(never)]
fn recurse(depth: usize) -> u8 {
    const PAD: usize = 4096;
    let pad = [depth as u8; PAD];
    let pad = std::hint::black_box(pad);
    op_boundary();
    if depth == 0 {
        return pad[0];
    }
    recurse(depth - 1).wrapping_add(std::hint::black_box(pad[PAD - 1]))
}

#[test]
fn deep_recursion_hits_the_stack_limit_with_a_clear_diagnostic() {
    if !fiber::supported() {
        return; // no fiber backend on this target; nothing to overflow
    }
    // 16 levels × ~4 KiB ≫ what a 64 KiB stack can hold once the 32 KiB
    // red zone is reserved.
    let config = Config::exhaustive()
        .with_max_runs(1)
        .with_backend(Backend::Fibers)
        .with_fiber_stack_size(64 * 1024);
    let mut outcomes = Vec::new();
    explore(
        &config,
        |ex| {
            ex.spawn(|| {
                recurse(16);
            });
        },
        |run| {
            outcomes.push(run.outcome.clone());
            ControlFlow::Continue(())
        },
    );
    assert_eq!(outcomes.len(), 1);
    let RunOutcome::Panicked { message, .. } = &outcomes[0] else {
        panic!("expected a stack-overflow panic, got {:?}", outcomes[0]);
    };
    assert!(
        message.contains("fiber stack overflow"),
        "diagnostic names the failure: {message}"
    );
    assert!(
        message.contains("Config::fiber_stack_size"),
        "diagnostic names the remedy: {message}"
    );
}

#[test]
fn larger_configured_stack_lets_the_same_recursion_complete() {
    if !fiber::supported() {
        return;
    }
    let config = Config::exhaustive()
        .with_max_runs(1)
        .with_backend(Backend::Fibers)
        .with_fiber_stack_size(4 * 1024 * 1024);
    let stats = explore(
        &config,
        |ex| {
            ex.spawn(|| {
                recurse(16);
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete, "fits in 4 MiB");
            ControlFlow::Continue(())
        },
    );
    assert_eq!(stats.runs, 1);
    assert_eq!(stats.panicked, 0);
}

#[test]
fn overflow_on_one_run_does_not_poison_the_next() {
    if !fiber::supported() {
        return;
    }
    // Two threads, one of which overflows: the exploration keeps going —
    // the overflowing run is reported as panicked, the fiber and its
    // recycled stack stay usable, and every schedule is still visited.
    // (POR off: these boundary-only threads are independent, so POR would
    // correctly collapse the exploration to a single schedule.)
    let config = Config::exhaustive()
        .with_por(false)
        .with_backend(Backend::Fibers)
        .with_fiber_stack_size(64 * 1024);
    let mut panicked = 0u64;
    let stats = explore(
        &config,
        |ex| {
            ex.spawn(|| {
                recurse(16);
            });
            ex.spawn(|| {
                op_boundary();
            });
        },
        |run| {
            if matches!(run.outcome, RunOutcome::Panicked { .. }) {
                panicked += 1;
            }
            ControlFlow::Continue(())
        },
    );
    assert!(stats.runs > 1, "the panicking runs do not end exploration");
    assert_eq!(stats.panicked, panicked);
    assert!(panicked > 0, "every schedule overflows the deep thread");
}
