//! Property-based tests of the stateless model checker: exploration
//! determinism, interleaving counts, replay fidelity, and deadlock
//! detection on randomly generated lock programs.

use std::ops::ControlFlow;
use std::sync::Arc;

use proptest::prelude::*;

use lineup_sched::{explore, op_boundary, Config, RunOutcome};
use lineup_sync::{DataCell, Mutex};

/// n!/(k1!·k2!·…) for the given segment counts.
fn multinomial(parts: &[usize]) -> u64 {
    let total: usize = parts.iter().sum();
    let mut result = 1u64;
    let mut denom_parts: Vec<usize> = Vec::new();
    for &p in parts {
        for i in 1..=p {
            denom_parts.push(i);
        }
    }
    let mut denoms = denom_parts.into_iter();
    for n in 1..=total {
        result *= n as u64;
        if let Some(d) = denoms.next() {
            result /= d as u64;
        }
    }
    // Any leftover denominators (can't happen: counts match).
    for d in denoms {
        result /= d as u64;
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Programs whose only schedule points are operation boundaries have
    /// exactly multinomial(total; per-thread segments) interleavings, and
    /// DFS visits each exactly once.
    #[test]
    fn boundary_program_interleaving_count(
        segs in prop::collection::vec(1usize..4, 1..4)
    ) {
        // Each thread runs `segs[t]` segments (separated by boundaries,
        // with start/finish acting as outer separators): a thread with k
        // boundaries has k+1 segments.
        let parts: Vec<usize> = segs.iter().map(|&b| b + 1).collect();
        let expected = multinomial(&parts);
        prop_assume!(expected <= 5_000); // keep the exploration small
        let segs2 = segs.clone();
        // POR off: the count below is the full interleaving count; POR
        // would (correctly) collapse these independent boundary programs.
        let stats = explore(
            &Config::exhaustive().with_por(false),
            move |ex| {
                for &boundaries in &segs2 {
                    ex.spawn(move || {
                        for _ in 0..boundaries {
                            op_boundary();
                        }
                    });
                }
            },
            |_| ControlFlow::Continue(()),
        );
        prop_assert_eq!(stats.runs, expected);
        prop_assert_eq!(stats.complete, expected);
    }

    /// Exploring the same program twice yields identical schedules, run
    /// by run (the determinism stateless model checking relies on).
    #[test]
    fn exploration_is_deterministic(
        segs in prop::collection::vec(1usize..3, 1..4),
        seed in any::<u64>(),
    ) {
        let run_once = |segs: Vec<usize>| {
            let mut schedules = Vec::new();
            explore(
                &Config::random(seed, 20),
                move |ex| {
                    for &boundaries in &segs {
                        ex.spawn(move || {
                            for _ in 0..boundaries {
                                op_boundary();
                            }
                        });
                    }
                },
                |run| {
                    schedules.push(run.schedule.clone());
                    ControlFlow::Continue(())
                },
            );
            schedules
        };
        prop_assert_eq!(run_once(segs.clone()), run_once(segs));
    }

    /// Replaying a recorded run's decisions reproduces its schedule.
    #[test]
    fn replay_reproduces_recorded_runs(
        segs in prop::collection::vec(1usize..3, 2..4),
        pick in 0usize..50,
    ) {
        let build = |segs: Vec<usize>| move |ex: &mut lineup_sched::Execution| {
            for &boundaries in &segs {
                ex.spawn(move || {
                    for _ in 0..boundaries {
                        op_boundary();
                    }
                });
            }
        };
        // Record some run.
        let mut recorded = None;
        let mut count = 0usize;
        explore(&Config::exhaustive(), build(segs.clone()), |run| {
            if count == pick {
                recorded = Some(run.clone());
                ControlFlow::Break(())
            } else {
                count += 1;
                ControlFlow::Continue(())
            }
        });
        let recorded = match recorded {
            Some(r) => r,
            None => return Ok(()), // pick beyond tree size: nothing to check
        };
        // Replay it.
        let mut replayed = None;
        explore(
            &Config::replay(recorded.decisions.clone()),
            build(segs),
            |run| {
                replayed = Some(run.clone());
                ControlFlow::Break(())
            },
        );
        let replayed = replayed.expect("replay runs once");
        prop_assert_eq!(replayed.schedule, recorded.schedule);
        prop_assert_eq!(replayed.outcome, recorded.outcome);
    }

    /// Random two-lock programs: when both threads take the locks in the
    /// same order, no schedule deadlocks; when they take them in opposite
    /// orders, the classic ABBA deadlock exists and the explorer finds it.
    #[test]
    fn lock_order_discipline_vs_abba(same_order in any::<bool>()) {
        let stats = explore(
            &Config::exhaustive(),
            move |ex| {
                let a = Arc::new(Mutex::new());
                let b = Arc::new(Mutex::new());
                let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
                ex.spawn(move || {
                    a1.acquire();
                    b1.acquire();
                    b1.release();
                    a1.release();
                });
                ex.spawn(move || {
                    if same_order {
                        a.acquire();
                        b.acquire();
                        b.release();
                        a.release();
                    } else {
                        b.acquire();
                        a.acquire();
                        a.release();
                        b.release();
                    }
                });
            },
            |_| ControlFlow::Continue(()),
        );
        if same_order {
            prop_assert_eq!(stats.deadlock, 0);
            // Under POR some runs end as sleep-set prunes instead of
            // completing; none may deadlock or get stuck.
            prop_assert_eq!(stats.complete + stats.sleep_prunes, stats.runs);
        } else {
            prop_assert!(stats.deadlock > 0, "ABBA deadlock must be found");
            prop_assert!(stats.complete > 0, "non-overlapping schedules pass");
        }
    }

    /// Lock-protected counters never lose updates, for random thread and
    /// increment counts.
    #[test]
    fn locked_counter_is_exact(
        threads in 2usize..4,
        incs in 1usize..3,
    ) {
        prop_assume!(threads * incs <= 6);
        let finals = std::cell::RefCell::new(Vec::new());
        let slot: std::rc::Rc<std::cell::RefCell<Option<Arc<DataCell<usize>>>>> =
            Default::default();
        let slot2 = std::rc::Rc::clone(&slot);
        explore(
            &Config::preemption_bounded(2),
            move |ex| {
                let m = Arc::new(Mutex::new());
                let c = Arc::new(DataCell::new(0usize));
                *slot2.borrow_mut() = Some(Arc::clone(&c));
                for _ in 0..threads {
                    let m = Arc::clone(&m);
                    let c = Arc::clone(&c);
                    ex.spawn(move || {
                        for _ in 0..incs {
                            m.acquire();
                            let v = c.get();
                            c.set(v + 1);
                            m.release();
                        }
                    });
                }
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                let c = slot.borrow().clone().unwrap();
                finals.borrow_mut().push(c.get());
                ControlFlow::Continue(())
            },
        );
        let expected = threads * incs;
        prop_assert!(finals.into_inner().iter().all(|&v| v == expected));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Loosening the preemption bound only adds schedules: the run counts
    /// are monotone in the bound, and the unbounded exploration dominates.
    #[test]
    fn preemption_bound_is_monotone(ops in 1usize..3) {
        let run_with = |bound: Option<usize>| {
            // POR off: it only engages when the bound is `None`, which
            // would break the raw run-count comparison across bounds.
            let mut cfg = Config::exhaustive().with_por(false);
            cfg.preemption_bound = bound;
            explore(
                &cfg,
                move |ex| {
                    for _ in 0..2 {
                        ex.spawn(move || {
                            let c = lineup_sync::Atomic::new(0usize);
                            // Shared-free atomics still create schedule
                            // points; add a genuinely shared cell.
                            let _ = c.load();
                        });
                    }
                    let shared = Arc::new(lineup_sync::Atomic::new(0usize));
                    for _ in 0..2 {
                        let s = Arc::clone(&shared);
                        ex.spawn(move || {
                            for _ in 0..ops {
                                s.fetch_add(1);
                            }
                        });
                    }
                },
                |_| ControlFlow::Continue(()),
            )
            .runs
        };
        let (r0, r1, r2, rinf) = (
            run_with(Some(0)),
            run_with(Some(1)),
            run_with(Some(2)),
            run_with(None),
        );
        prop_assert!(r0 <= r1 && r1 <= r2 && r2 <= rinf, "{r0} {r1} {r2} {rinf}");
        prop_assert!(r0 >= 1);
    }

    /// PCT through the public API: completes within its run budget and
    /// never produces an invalid outcome on a deadlock-free program.
    #[test]
    fn pct_explores_within_budget(seed in any::<u64>(), depth in 1usize..5) {
        let mut outcomes_ok = true;
        let stats = explore(
            &Config::pct(seed, depth, 25),
            |ex| {
                let shared = Arc::new(lineup_sync::Atomic::new(0usize));
                for _ in 0..3 {
                    let s = Arc::clone(&shared);
                    ex.spawn(move || {
                        s.fetch_add(1);
                        let _ = s.load();
                    });
                }
            },
            |run| {
                outcomes_ok &= run.outcome == RunOutcome::Complete;
                ControlFlow::Continue(())
            },
        );
        prop_assert!(outcomes_ok, "every schedule completes");
        prop_assert!(stats.runs <= 25);
        prop_assert_eq!(stats.complete, stats.runs);
    }
}
