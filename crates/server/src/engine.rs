//! The ingest engine: demultiplexes decoded records into per-object
//! shards and aggregates service-wide statistics.
//!
//! Sharding is P-compositionality (Horn & Kroening) applied online:
//! linearizability is compositional over objects, so each object's
//! stream is checked independently under its own lock. Connections
//! touching different objects never contend; connections sharing an
//! object serialize on that object's shard only.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lineup::{AdtKind, HistoryCache};
use lineup_wire::Record;

use crate::shard::{Shard, ShardConfig, ShardCounters, ShardError};
use crate::stats::StatsSnapshot;

/// Engine-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Per-shard tuning.
    pub shard: ShardConfig,
}

/// Shared ingest state: the object registry plus service totals.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    shards: Mutex<HashMap<u64, Arc<Mutex<Shard>>>>,
    /// Cross-object window-verdict cache shared by every shard: many
    /// objects of one kind replay the same windows, and a verdict for a
    /// (kind, carried state, events, stuck) key is object-independent.
    verdicts: Arc<HistoryCache<bool>>,
    /// Counters folded from ended object generations.
    finished: Mutex<ShardCounters>,
    objects_finished: AtomicU64,
    connections: AtomicU64,
    protocol_errors: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
}

impl Engine {
    /// A fresh engine.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            shards: Mutex::new(HashMap::new()),
            verdicts: Arc::new(HistoryCache::new(HistoryCache::<bool>::DEFAULT_SHARDS)),
            finished: Mutex::new(ShardCounters::default()),
            objects_finished: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    /// Registers (or re-registers) `object`. Re-registering an id whose
    /// previous generation ended starts a fresh history under the same
    /// id; the old generation's counters fold into the totals.
    pub fn register(&self, object: u64, kind: Option<AdtKind>, threads: u32) -> Arc<Mutex<Shard>> {
        let shard = Arc::new(Mutex::new(
            Shard::new(kind, threads, &self.config.shard)
                .with_verdict_cache(Arc::clone(&self.verdicts)),
        ));
        let previous = self
            .shards
            .lock()
            .unwrap()
            .insert(object, Arc::clone(&shard));
        if let Some(previous) = previous {
            self.fold(&previous.lock().unwrap());
        }
        shard
    }

    /// The live shard for `object`, if registered.
    pub fn shard(&self, object: u64) -> Option<Arc<Mutex<Shard>>> {
        self.shards.lock().unwrap().get(&object).cloned()
    }

    /// Ends `object` and folds its counters into the totals.
    pub fn end_object(&self, object: u64, stuck: bool) -> bool {
        let shard = self.shards.lock().unwrap().remove(&object);
        match shard {
            Some(shard) => {
                let mut shard = shard.lock().unwrap();
                shard.end(stuck);
                self.fold(&shard);
                true
            }
            None => false,
        }
    }

    fn fold(&self, shard: &Shard) {
        self.finished.lock().unwrap().absorb(&shard.counters);
        self.objects_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies one decoded record. `cache` carries the caller's
    /// last-object shard so repeated events on one object skip the
    /// registry lock — the common case for per-object streams.
    pub fn apply(&self, record: Record<'_>, cache: &mut Option<(u64, Arc<Mutex<Shard>>)>) {
        match record {
            Record::Hello { .. } => {
                // A handshake is only valid as the first frame; the
                // connection layer consumed that one already.
                self.note_protocol_error();
            }
            Record::ObjectRegister {
                object,
                kind,
                threads,
            } => {
                let shard = self.register(object, kind, threads);
                *cache = Some((object, shard));
            }
            Record::Call {
                object,
                thread,
                name,
                args,
                ..
            } => match self.cached_shard(object, cache) {
                Some(shard) => {
                    self.note_shard_result(shard.lock().unwrap().call(thread, name, args));
                }
                None => self.note_protocol_error(),
            },
            Record::Return {
                object,
                thread,
                value,
                ..
            } => match self.cached_shard(object, cache) {
                Some(shard) => {
                    self.note_shard_result(shard.lock().unwrap().ret(thread, value));
                }
                None => self.note_protocol_error(),
            },
            Record::ObjectEnd { object, stuck } => {
                if let Some((cached, _)) = cache {
                    if *cached == object {
                        *cache = None;
                    }
                }
                if !self.end_object(object, stuck) {
                    self.note_protocol_error();
                }
            }
            Record::Shutdown => self.request_shutdown(),
        }
    }

    fn cached_shard(
        &self,
        object: u64,
        cache: &mut Option<(u64, Arc<Mutex<Shard>>)>,
    ) -> Option<Arc<Mutex<Shard>>> {
        if let Some((cached, shard)) = cache {
            if *cached == object {
                return Some(Arc::clone(shard));
            }
        }
        let shard = self.shard(object)?;
        *cache = Some((object, Arc::clone(&shard)));
        Some(shard)
    }

    fn note_shard_result(&self, result: Result<(), ShardError>) {
        if result.is_err() {
            self.note_protocol_error();
        }
    }

    /// Counts a malformed record or event (producer bug).
    pub fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection.
    pub fn note_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Asks the service to stop accepting and drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Aggregates totals plus every live shard into one snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut totals = self.finished.lock().unwrap().clone();
        let live: Vec<Arc<Mutex<Shard>>> = self.shards.lock().unwrap().values().cloned().collect();
        let objects_live = live.len();
        let mut live_violations = 0u64;
        let mut buffered_ops = 0usize;
        for shard in &live {
            let shard = shard.lock().unwrap();
            totals.absorb(&shard.counters);
            buffered_ops += shard.window_ops();
            if shard.violated() {
                live_violations += 1;
            }
        }
        StatsSnapshot {
            uptime_secs: self.started.elapsed().as_secs_f64(),
            connections: self.connections.load(Ordering::Relaxed),
            objects_live,
            objects_finished: self.objects_finished.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            buffered_ops,
            live_violations,
            counters: totals,
        }
    }
}
