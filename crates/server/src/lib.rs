//! **lineup-server**: an online linearizability monitoring service.
//!
//! Live applications instrument their concurrent objects with
//! [`lineup-wire`](lineup_wire) recorders and stream call/return events
//! to this service over TCP or a Unix socket. The service demultiplexes
//! each stream into per-object [`Shard`]s (linearizability is
//! compositional over objects, so shards check independently), runs a
//! kind-dispatched monitor per shard — the specialized log-linear
//! checkers for unambiguous windows, the Wing–Gong search otherwise —
//! and garbage-collects checked history *windows* so memory stays
//! bounded on unbounded streams.
//!
//! Windows close only at points where the verdict and the carried state
//! are provably identical to what one offline check of the entire
//! stream would produce; see the [`shard`] module docs for the
//! exactness argument, and `tests/server_differential.rs` for the
//! machine-checked version of the claim.
//!
//! # In-process example
//!
//! ```
//! use lineup::{AdtKind, Value};
//! use lineup_server::{Engine, EngineConfig, ingest_stream};
//! use lineup_wire::StreamRecorder;
//! use std::io::Write;
//! use std::sync::{Arc, Mutex};
//!
//! // A producer records a short queue session...
//! let buf = Arc::new(Mutex::new(Vec::new()));
//! struct Sink(Arc<Mutex<Vec<u8>>>);
//! impl Write for Sink {
//!     fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
//!         self.0.lock().unwrap().extend_from_slice(b);
//!         Ok(b.len())
//!     }
//!     fn flush(&mut self) -> std::io::Result<()> { Ok(()) }
//! }
//! let rec = StreamRecorder::to_writer(Box::new(Sink(Arc::clone(&buf)))).unwrap();
//! let q = rec.alloc_object();
//! rec.register(q, Some(AdtKind::Queue), 1).unwrap();
//! rec.call(q, 0, "Enqueue", &[Value::Int(1)]).unwrap();
//! rec.ret(q, 0, &Value::Unit).unwrap();
//! rec.call(q, 0, "TryDequeue", &[]).unwrap();
//! rec.ret(q, 0, &Value::some(Value::int(1))).unwrap();
//! rec.end(q, false).unwrap();
//! rec.flush().unwrap();
//!
//! // ...and the service checks it.
//! let engine = Engine::new(EngineConfig::default());
//! let bytes = buf.lock().unwrap().clone();
//! ingest_stream(&engine, &bytes[..]).unwrap();
//! let snapshot = engine.snapshot();
//! assert_eq!(snapshot.counters.violations, 0);
//! assert_eq!(snapshot.counters.ops, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod net;
pub mod shard;
pub mod stats;

pub use engine::{Engine, EngineConfig};
pub use net::{ingest_stream, serve_connection, Server, ServerConfig};
pub use shard::{Shard, ShardConfig, ShardCounters, ShardError};
pub use stats::StatsSnapshot;
