//! The `lineup-server` binary: run the monitoring service, or replay a
//! captured wire stream through the same ingest path.
//!
//! ```text
//! lineup-server [--tcp ADDR] [--unix PATH] [--window N]
//!               [--stats-secs N] [--json] [--replay FILE ...]
//! ```
//!
//! With `--replay`, the listed capture files (e.g. from
//! `stress --emit`) are ingested offline, the final snapshot is
//! printed, and the exit code reflects the verdict (1 on violations).
//! Otherwise the service listens until a client sends `Shutdown`,
//! logging a stats line every `--stats-secs` (0 disables). `--json`
//! switches the final snapshot to JSON.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use lineup_server::{Engine, EngineConfig, Server, ServerConfig, ShardConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut window: usize = 512;
    let mut stats_secs: u64 = 10;
    let mut json = false;
    let mut replay: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                i += 1;
                tcp = Some(expect_value(&args, i, "--tcp"));
            }
            "--unix" => {
                i += 1;
                unix = Some(expect_value(&args, i, "--unix"));
            }
            "--window" => {
                i += 1;
                window = expect_value(&args, i, "--window")
                    .parse()
                    .unwrap_or_else(|_| usage("--window expects a number"));
            }
            "--stats-secs" => {
                i += 1;
                stats_secs = expect_value(&args, i, "--stats-secs")
                    .parse()
                    .unwrap_or_else(|_| usage("--stats-secs expects a number"));
            }
            "--json" => json = true,
            "--replay" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    replay.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let engine_config = EngineConfig {
        shard: ShardConfig {
            window_target: window,
        },
    };

    if !replay.is_empty() {
        return replay_files(engine_config, &replay, json);
    }

    if tcp.is_none() && unix.is_none() {
        tcp = Some("127.0.0.1:7117".to_string());
    }
    let server = match Server::spawn(ServerConfig {
        tcp,
        unix: unix.map(Into::into),
        engine: engine_config,
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lineup-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = server.tcp_addr() {
        eprintln!("lineup-server: listening on tcp://{addr}");
    }
    let engine = Arc::clone(server.engine());
    let ticker = (stats_secs > 0).then(|| {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            while !engine.shutdown_requested() {
                thread::sleep(Duration::from_secs(stats_secs.min(1)));
                let mut waited = 1;
                while waited < stats_secs && !engine.shutdown_requested() {
                    thread::sleep(Duration::from_secs(1));
                    waited += 1;
                }
                if !engine.shutdown_requested() {
                    eprintln!("lineup-server: {}", engine.snapshot().one_line());
                }
            }
        })
    });
    server.join();
    if let Some(t) = ticker {
        let _ = t.join();
    }
    report(&engine, json)
}

fn replay_files(config: EngineConfig, files: &[String], json: bool) -> ExitCode {
    let engine = Engine::new(config);
    for file in files {
        let f = match std::fs::File::open(file) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("lineup-server: cannot open {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = lineup_server::ingest_stream(&engine, f) {
            eprintln!("lineup-server: {file}: {e}");
            return ExitCode::FAILURE;
        }
    }
    report(&engine, json)
}

fn report(engine: &Engine, json: bool) -> ExitCode {
    let snapshot = engine.snapshot();
    if json {
        println!("{}", snapshot.to_json());
    } else {
        println!("{}", snapshot.one_line());
    }
    // counters already include live shards (snapshot folds them in).
    if snapshot.counters.violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn expect_value(args: &[String], i: usize, flag: &str) -> String {
    args.get(i)
        .cloned()
        .unwrap_or_else(|| usage(&format!("{flag} expects a value")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("lineup-server: {err}");
    }
    eprintln!(
        "usage: lineup-server [--tcp ADDR] [--unix PATH] [--window N] \
         [--stats-secs N] [--json] [--replay FILE ...]"
    );
    std::process::exit(2);
}
