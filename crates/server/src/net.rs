//! Socket front end: TCP and Unix-socket listeners, one ingest thread
//! per connection, cooperative shutdown via the wire `Shutdown` record.
//!
//! Built on `std::net`/`std::os::unix::net` only. Listeners poll with a
//! short accept timeout (non-blocking accept + sleep) so a shutdown
//! request observed by any connection stops the whole service without
//! signal machinery.

use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use lineup_wire::{FrameReader, WireError};

use crate::engine::{Engine, EngineConfig};

/// How often idle listeners re-check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read buffer per connection: large enough that syscalls are not the
/// ingest bottleneck.
const READ_BUF: usize = 1 << 16;

/// Service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// TCP listen address, e.g. `127.0.0.1:7117`; `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix-socket path; `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// Engine (and per-shard) tuning.
    pub engine: EngineConfig,
}

/// A running monitoring service.
#[derive(Debug)]
pub struct Server {
    engine: Arc<Engine>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    listeners: Vec<thread::JoinHandle<()>>,
    live_connections: Arc<AtomicU64>,
}

impl Server {
    /// Binds the configured listeners and starts accepting.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let engine = Arc::new(Engine::new(config.engine));
        let live_connections = Arc::new(AtomicU64::new(0));
        let mut listeners = Vec::new();
        let mut tcp_addr = None;

        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let engine = Arc::clone(&engine);
            let live = Arc::clone(&live_connections);
            listeners.push(
                thread::Builder::new()
                    .name("lineup-accept-tcp".into())
                    .spawn(move || accept_loop_tcp(listener, engine, live))?,
            );
        }

        if let Some(path) = &config.unix {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            let engine = Arc::clone(&engine);
            let live = Arc::clone(&live_connections);
            listeners.push(
                thread::Builder::new()
                    .name("lineup-accept-unix".into())
                    .spawn(move || accept_loop_unix(listener, engine, live))?,
            );
        }

        Ok(Server {
            engine,
            tcp_addr,
            unix_path: config.unix,
            listeners,
            live_connections,
        })
    }

    /// The shared engine (for snapshots and programmatic shutdown).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The bound TCP address (with the OS-assigned port when the config
    /// asked for port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Connections currently being served.
    pub fn live_connections(&self) -> u64 {
        self.live_connections.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested and all listeners and
    /// connections have drained, then removes the Unix socket file.
    pub fn join(self) {
        for handle in self.listeners {
            let _ = handle.join();
        }
        while self.live_connections.load(Ordering::SeqCst) > 0 {
            thread::sleep(ACCEPT_POLL);
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn accept_loop_tcp(listener: TcpListener, engine: Arc<Engine>, live: Arc<AtomicU64>) {
    let workers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::default();
    while !engine.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                spawn_connection(&workers, &engine, &live, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    join_workers(&workers);
}

fn accept_loop_unix(listener: UnixListener, engine: Arc<Engine>, live: Arc<AtomicU64>) {
    let workers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::default();
    while !engine.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection(&workers, &engine, &live, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    join_workers(&workers);
}

fn spawn_connection<S: Read + Send + 'static>(
    workers: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    engine: &Arc<Engine>,
    live: &Arc<AtomicU64>,
    stream: S,
) {
    engine.note_connection();
    live.fetch_add(1, Ordering::SeqCst);
    let engine = Arc::clone(engine);
    let worker_live = Arc::clone(live);
    let handle = thread::Builder::new()
        .name("lineup-conn".into())
        .spawn(move || {
            if let Err(e) = serve_connection(&engine, stream) {
                engine.note_protocol_error();
                eprintln!("lineup-server: connection error: {e}");
            }
            worker_live.fetch_sub(1, Ordering::SeqCst);
        });
    match handle {
        Ok(handle) => workers.lock().unwrap().push(handle),
        Err(_) => {
            live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn join_workers(workers: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>) {
    let drained: Vec<_> = std::mem::take(&mut *workers.lock().unwrap());
    for handle in drained {
        let _ = handle.join();
    }
}

/// Ingests one stream: handshake, then demux every record until EOF or
/// `Shutdown`. Used by both socket connections and `--replay` files.
pub fn serve_connection<S: Read>(engine: &Engine, stream: S) -> Result<(), WireError> {
    let mut reader = FrameReader::new(BufReader::with_capacity(READ_BUF, stream));
    reader.expect_hello()?;
    let mut cache = None;
    while let Some(record) = reader.next_record()? {
        let is_shutdown = matches!(record, lineup_wire::Record::Shutdown);
        engine.apply(record, &mut cache);
        if is_shutdown {
            break;
        }
    }
    Ok(())
}

/// Convenience for tests and benches: serve a single in-memory or file
/// stream into a standalone engine.
pub fn ingest_stream<S: Read>(engine: &Engine, stream: S) -> Result<(), WireError> {
    serve_connection(engine, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup::{AdtKind, Value};
    use lineup_wire::StreamRecorder;
    use std::io::Write;
    use std::net::TcpStream;

    fn queue_stream(ops: i64) -> Vec<u8> {
        let buf = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let rec = StreamRecorder::to_writer(Box::new(Shared(Arc::clone(&buf)))).unwrap();
        let obj = rec.alloc_object();
        rec.register(obj, Some(AdtKind::Queue), 1).unwrap();
        for i in 0..ops {
            rec.call(obj, 0, "Enqueue", &[Value::Int(i)]).unwrap();
            rec.ret(obj, 0, &Value::Unit).unwrap();
        }
        for i in 0..ops {
            rec.call(obj, 0, "TryDequeue", &[]).unwrap();
            rec.ret(obj, 0, &Value::some(Value::int(i))).unwrap();
        }
        rec.end(obj, false).unwrap();
        rec.flush().unwrap();
        let out = buf.lock().unwrap().clone();
        out
    }

    #[test]
    fn in_memory_stream_ingests_cleanly() {
        let engine = Engine::new(EngineConfig::default());
        ingest_stream(&engine, &queue_stream(100)[..]).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.counters.ops, 200);
        assert_eq!(snap.counters.violations, 0);
        assert_eq!(snap.objects_finished, 1);
        assert_eq!(snap.objects_live, 0);
    }

    #[test]
    fn tcp_round_trip_with_shutdown() {
        let server = Server::spawn(ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.tcp_addr().unwrap();
        let engine = Arc::clone(server.engine());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&queue_stream(50)).unwrap();
        let mut shutdown = Vec::new();
        lineup_wire::encode_record(&lineup_wire::Record::Shutdown, &mut shutdown);
        stream.write_all(&shutdown).unwrap();
        drop(stream);

        server.join();
        let snap = engine.snapshot();
        assert_eq!(snap.counters.ops, 100);
        assert_eq!(snap.counters.violations, 0);
        assert_eq!(snap.connections, 1);
    }
}
