//! Per-object monitoring shards with exact windowed history GC.
//!
//! A [`Shard`] owns one monitored object's history and verdict. Events
//! append to the current *window* (a [`History`]); when the window is
//! both large enough and *quiescent* (no pending calls), the shard tries
//! to close it: check the window against the ideal oracle started from
//! the carried state, compute the window's end state, carry that state
//! into the next window, and drop the checked events. Memory per object
//! is then bounded by the window size plus the carried element sequence,
//! no matter how long the stream runs.
//!
//! # Why windowed verdicts equal offline verdicts
//!
//! Cutting at a quiescent point is sound: with no pending calls, every
//! operation of the window precedes (`<H`) every later operation, so any
//! linearization of the whole history linearizes the window as a prefix.
//! The subtle part is the *state* handed to the next window — it must be
//! the same for **every** linearization of the window, or the shard
//! would commit to one witness where the offline checker may pick
//! another. The shard therefore closes a window only when that end state
//! is provably unique:
//!
//! * **Queue/Stack** — responses name each removed value, so the
//!   surviving multiset is determined; the close rule additionally
//!   requires (a) all values across carried state and window inserts to
//!   be pairwise distinct (removal identity is then unambiguous) and
//!   (b) the surviving insert operations to be pairwise `<H`-ordered
//!   (their relative order is then forced). Survivors of the carried
//!   state keep their order and precede survivors of the window.
//! * **Set** — membership is per-key: successful adds and removes of a
//!   key must alternate in any witness, so the final presence is the
//!   initial presence XOR the parity of successful toggles. Always
//!   closable at quiescence.
//! * **Priority queue** — the state is a multiset, so it is simply
//!   `carried ⊎ inserts − extracted`, order-free. Always closable.
//!
//! A quiescent point that fails the rule (duplicate values in flight,
//! concurrent surviving inserts) is *held*: the window keeps growing
//! until a closable point or the end of the object. Held windows are
//! counted so the pressure is observable in the stats.

use std::collections::{BTreeMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use lineup::{AdtKind, Event, History, HistoryCache, Invocation, MonitorPathStats, Value};
use lineup_monitor::{ideal_oracle_from, state_invocations, Monitor};

/// Tuning knobs for a [`Shard`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Minimum completed operations before a quiescent point may close
    /// the window. Larger windows amortize per-check setup; smaller
    /// windows bound memory tighter.
    pub window_target: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { window_target: 512 }
    }
}

/// A malformed event sequence (a producer bug, not a linearizability
/// violation): the event is dropped and counted, the object keeps going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Thread index at or above the registered thread count.
    UnknownThread(u32),
    /// A call from a thread whose previous call has not returned.
    DoubleCall(u32),
    /// A return from a thread with no open call.
    ReturnWithoutCall(u32),
    /// An event after the object's `ObjectEnd`.
    Ended,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::UnknownThread(t) => write!(f, "thread {t} outside registered range"),
            ShardError::DoubleCall(t) => write!(f, "thread {t} called again before returning"),
            ShardError::ReturnWithoutCall(t) => write!(f, "thread {t} returned without a call"),
            ShardError::Ended => write!(f, "event after ObjectEnd"),
        }
    }
}

impl Error for ShardError {}

/// Monotonic per-shard counters, folded into the service totals when the
/// object ends.
#[derive(Debug, Clone, Default)]
pub struct ShardCounters {
    /// Call + return events ingested.
    pub events: u64,
    /// Completed operations ingested.
    pub ops: u64,
    /// Windows checked and discarded (includes the final segment).
    pub windows_closed: u64,
    /// Windows discarded *unchecked*: the object has no ADT kind, or a
    /// violation was already flagged.
    pub windows_retired: u64,
    /// Quiescent close attempts deferred by the exactness rule.
    pub windows_held: u64,
    /// Monitor checks run (full + stuck).
    pub checks: u64,
    /// Stuck checks among them (one per pending op of a stuck end).
    pub stuck_checks: u64,
    /// Windows rejected by the monitor.
    pub violations: u64,
    /// Objects ended with pending calls but not marked stuck: nothing to
    /// check, the truncated tail is discarded.
    pub incomplete: u64,
    /// Largest window (in operations) ever buffered.
    pub peak_window_ops: usize,
    /// Specialized-vs-fallback histogram aggregated over all checks.
    pub paths: MonitorPathStats,
    /// Oracle steps spent in fallback searches.
    pub oracle_steps: u64,
    /// Memoization hits in fallback searches.
    pub memo_hits: u64,
    /// Window verdicts served from the shared cross-object verdict
    /// cache, skipping the monitor entirely.
    pub verdict_cache_hits: u64,
}

impl ShardCounters {
    /// Folds `other` into `self` (saturating).
    pub fn absorb(&mut self, other: &ShardCounters) {
        self.events = self.events.saturating_add(other.events);
        self.ops = self.ops.saturating_add(other.ops);
        self.windows_closed = self.windows_closed.saturating_add(other.windows_closed);
        self.windows_retired = self.windows_retired.saturating_add(other.windows_retired);
        self.windows_held = self.windows_held.saturating_add(other.windows_held);
        self.checks = self.checks.saturating_add(other.checks);
        self.stuck_checks = self.stuck_checks.saturating_add(other.stuck_checks);
        self.violations = self.violations.saturating_add(other.violations);
        self.incomplete = self.incomplete.saturating_add(other.incomplete);
        self.peak_window_ops = self.peak_window_ops.max(other.peak_window_ops);
        self.paths.specialized_checks = self
            .paths
            .specialized_checks
            .saturating_add(other.paths.specialized_checks);
        self.paths.fallback_checks = self
            .paths
            .fallback_checks
            .saturating_add(other.paths.fallback_checks);
        for (slot, add) in self
            .paths
            .fallback_reasons
            .iter_mut()
            .zip(other.paths.fallback_reasons.iter())
        {
            *slot = slot.saturating_add(*add);
        }
        self.oracle_steps = self.oracle_steps.saturating_add(other.oracle_steps);
        self.memo_hits = self.memo_hits.saturating_add(other.memo_hits);
        self.verdict_cache_hits = self
            .verdict_cache_hits
            .saturating_add(other.verdict_cache_hits);
    }
}

/// One monitored object: its open window, carried state, and verdict.
#[derive(Debug)]
pub struct Shard {
    kind: Option<AdtKind>,
    threads: usize,
    window_target: usize,
    history: History,
    /// Per-thread open call: the op index awaiting its return.
    open: Vec<Option<usize>>,
    pending: usize,
    completed: usize,
    /// Ideal element sequence at the start of the current window.
    carried: Vec<i64>,
    violated: bool,
    done: bool,
    /// Shared cross-object verdict cache: identical windows over
    /// identical carried state re-use each other's monitor verdict.
    cache: Option<Arc<HistoryCache<bool>>>,
    /// Counters for this object (current generation).
    pub counters: ShardCounters,
}

impl Shard {
    /// A fresh shard for an object with `threads` client threads.
    pub fn new(kind: Option<AdtKind>, threads: u32, config: &ShardConfig) -> Self {
        let threads = (threads as usize).max(1);
        Shard {
            kind,
            threads,
            window_target: config.window_target.max(1),
            history: History::new(threads),
            open: vec![None; threads],
            pending: 0,
            completed: 0,
            carried: Vec::new(),
            violated: false,
            done: false,
            cache: None,
            counters: ShardCounters::default(),
        }
    }

    /// Attaches a shared verdict cache. Windows whose (kind, carried
    /// state, events, stuck flag) match a previously checked window —
    /// on this object or any other — are resolved without monitor work.
    pub fn with_verdict_cache(mut self, cache: Arc<HistoryCache<bool>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The object's registered ADT kind.
    pub fn kind(&self) -> Option<AdtKind> {
        self.kind
    }

    /// Whether a linearizability violation has been flagged.
    pub fn violated(&self) -> bool {
        self.violated
    }

    /// Whether the object has ended.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Operations currently buffered in the open window.
    pub fn window_ops(&self) -> usize {
        self.history.ops.len()
    }

    /// Ingests a call event.
    pub fn call(&mut self, thread: u32, name: &str, args: Vec<Value>) -> Result<(), ShardError> {
        if self.done {
            return Err(ShardError::Ended);
        }
        let t = thread as usize;
        if t >= self.threads {
            return Err(ShardError::UnknownThread(thread));
        }
        if self.open[t].is_some() {
            return Err(ShardError::DoubleCall(thread));
        }
        let inv = Invocation {
            name: name.to_string(),
            args,
        };
        self.open[t] = Some(self.history.push_call(t, inv));
        self.pending += 1;
        self.counters.events += 1;
        self.counters.peak_window_ops = self.counters.peak_window_ops.max(self.history.ops.len());
        Ok(())
    }

    /// Ingests a return event; may close the current window.
    pub fn ret(&mut self, thread: u32, value: Value) -> Result<(), ShardError> {
        if self.done {
            return Err(ShardError::Ended);
        }
        let t = thread as usize;
        if t >= self.threads {
            return Err(ShardError::UnknownThread(thread));
        }
        let op = self.open[t]
            .take()
            .ok_or(ShardError::ReturnWithoutCall(thread))?;
        self.history.push_return(op, value);
        self.pending -= 1;
        self.completed += 1;
        self.counters.events += 1;
        self.counters.ops += 1;
        if self.pending == 0 && self.completed >= self.window_target {
            self.close_window(false);
        }
        Ok(())
    }

    /// Ends the object: checks the final segment (as stuck when the
    /// producer says so) and releases its memory. Idempotent.
    pub fn end(&mut self, stuck: bool) {
        if self.done {
            return;
        }
        self.done = true;
        if self.pending == 0 {
            self.close_window(true);
        } else if stuck {
            self.end_stuck();
        } else {
            // Truncated mid-operation but not deadlocked (producer went
            // away): there is no verdict to extract from the tail.
            self.counters.incomplete += 1;
        }
        self.history = History::new(self.threads);
        self.open.iter_mut().for_each(|o| *o = None);
        self.pending = 0;
        self.completed = 0;
        self.carried = Vec::new();
    }

    /// Closes the current window if allowed. `at_end` forces the check
    /// (no next window, so no end state is needed).
    fn close_window(&mut self, at_end: bool) {
        debug_assert_eq!(self.pending, 0);
        if self.history.ops.is_empty() {
            return;
        }
        let kind = match self.kind {
            Some(kind) if !self.violated => kind,
            // Kind-less objects are accounting-only; violated objects
            // already carry their verdict: both just shed memory.
            _ => {
                self.counters.windows_retired += 1;
                self.reset_window();
                return;
            }
        };
        let next_state = self.window_end_state(kind);
        if next_state.is_none() && !at_end {
            self.counters.windows_held += 1;
            return;
        }
        let ok = self.check_window(kind);
        self.counters.windows_closed += 1;
        if !ok {
            self.violated = true;
            self.counters.violations += 1;
        }
        if !at_end {
            if let (true, Some(state)) = (ok, next_state) {
                self.carried = state;
            }
            self.reset_window();
        }
    }

    /// Checks the final segment of a stuck object: the complete part
    /// must linearize and the oracle must then block on each pending
    /// call. Ideal oracles never block, so a watchdog-stuck object of a
    /// declared kind is always a violation — matching the offline
    /// monitor's verdict against the same oracle.
    fn end_stuck(&mut self) {
        self.history.stuck = true;
        let kind = match self.kind {
            Some(kind) if !self.violated => kind,
            _ => {
                self.counters.windows_retired += 1;
                return;
            }
        };
        let cached = self.cache.clone().map(|c| (c, self.window_key(kind)));
        let ok = if let Some(verdict) = cached.as_ref().and_then(|(cache, key)| cache.get(key)) {
            self.counters.verdict_cache_hits += 1;
            verdict
        } else {
            let monitor = self.window_monitor(kind);
            let mut ok = true;
            for e in self.history.pending_ops() {
                self.counters.checks += 1;
                self.counters.stuck_checks += 1;
                if !monitor.check_stuck(&self.history, e, &[]) {
                    ok = false;
                    break;
                }
            }
            self.absorb_monitor_stats(&monitor);
            if let Some((cache, key)) = &cached {
                cache.insert_if_absent(key, ok);
            }
            ok
        };
        self.counters.windows_closed += 1;
        if !ok {
            self.violated = true;
            self.counters.violations += 1;
        }
    }

    fn window_monitor(
        &self,
        kind: AdtKind,
    ) -> Monitor<lineup_monitor::FnOracle<Vec<i64>, lineup_monitor::IdealStep>> {
        Monitor::new(ideal_oracle_from(kind, self.carried.clone()))
            .with_adt_kind(kind)
            .with_adt_init(state_invocations(kind, &self.carried))
    }

    fn check_window(&mut self, kind: AdtKind) -> bool {
        let cached = self.cache.clone().map(|c| (c, self.window_key(kind)));
        if let Some(verdict) = cached.as_ref().and_then(|(cache, key)| cache.get(key)) {
            self.counters.verdict_cache_hits += 1;
            return verdict;
        }
        let monitor = self.window_monitor(kind);
        self.counters.checks += 1;
        let ok = monitor.check_full(&self.history, &[]);
        self.absorb_monitor_stats(&monitor);
        if let Some((cache, key)) = &cached {
            cache.insert_if_absent(key, ok);
        }
        ok
    }

    /// Cache key for the current window: a window verdict depends on
    /// the ADT kind, the carried state the oracle starts from, the
    /// window's event sequence, and the stuck flag — so all four are
    /// folded into one synthetic [`History`]. An extra pseudo-thread
    /// runs a single completed `__window/<kind>` operation carrying the
    /// carried-state values as arguments, followed by a replay of the
    /// real events (op indices shift by one).
    fn window_key(&self, kind: AdtKind) -> History {
        let mut key = History::new(self.threads + 1);
        let marker = key.push_call(
            self.threads,
            Invocation {
                name: format!("__window/{kind:?}"),
                args: self.carried.iter().map(|&v| Value::Int(v)).collect(),
            },
        );
        key.push_return(marker, Value::Unit);
        for ev in &self.history.events {
            match *ev {
                Event::Call(i) => {
                    let op = &self.history.ops[i];
                    let idx = key.push_call(op.thread, op.invocation.clone());
                    debug_assert_eq!(idx, i + 1);
                }
                Event::Return(i) => {
                    let resp = self.history.ops[i]
                        .response
                        .clone()
                        .expect("returned op has a response");
                    key.push_return(i + 1, resp);
                }
            }
        }
        key.stuck = self.history.stuck;
        key
    }

    fn absorb_monitor_stats(
        &mut self,
        monitor: &Monitor<lineup_monitor::FnOracle<Vec<i64>, lineup_monitor::IdealStep>>,
    ) {
        let stats = monitor.stats();
        let c = &mut self.counters;
        c.paths.specialized_checks = c
            .paths
            .specialized_checks
            .saturating_add(stats.paths.specialized_checks);
        c.paths.fallback_checks = c
            .paths
            .fallback_checks
            .saturating_add(stats.paths.fallback_checks);
        for (slot, add) in c
            .paths
            .fallback_reasons
            .iter_mut()
            .zip(stats.paths.fallback_reasons.iter())
        {
            *slot = slot.saturating_add(*add);
        }
        c.oracle_steps = c.oracle_steps.saturating_add(stats.oracle_steps);
        c.memo_hits = c.memo_hits.saturating_add(stats.memo_hits);
    }

    fn reset_window(&mut self) {
        self.history = History::new(self.threads);
        self.completed = 0;
        // pending == 0 at every close point, so `open` is already clear.
    }

    /// The unique end state of the current (complete) window, or `None`
    /// when it is not provably unique — the window is then held open.
    /// Exactness argument in the module docs; when the window is not
    /// linearizable the returned state is unused (the shard flags the
    /// violation instead).
    fn window_end_state(&self, kind: AdtKind) -> Option<Vec<i64>> {
        match kind {
            AdtKind::Queue => self.seq_end_state("Enqueue", "TryDequeue"),
            AdtKind::Stack => self.seq_end_state("Push", "TryPop"),
            AdtKind::Set => self.set_end_state(),
            AdtKind::PriorityQueue => self.pqueue_end_state(),
        }
    }

    /// Shared queue/stack path: survivors of the carried state (in
    /// order) followed by surviving inserts in their forced order.
    fn seq_end_state(&self, ins: &str, rem: &str) -> Option<Vec<i64>> {
        let h = &self.history;
        let mut inserts: Vec<(usize, i64)> = Vec::new();
        let mut removed: Vec<i64> = Vec::new();
        for (i, op) in h.ops.iter().enumerate() {
            let name = op.invocation.name.as_str();
            if name == ins {
                inserts.push((i, int_arg(op.invocation.args.first())?));
            } else if name == rem {
                match op.response.as_ref()? {
                    Value::Opt(Some(b)) => match **b {
                        Value::Int(v) => removed.push(v),
                        _ => return None,
                    },
                    Value::Fail => {}
                    _ => return None,
                }
            } else {
                // Unknown operation: no state function. The check still
                // runs at object end and rejects it.
                return None;
            }
        }
        // Distinctness across carried state + window inserts: removal
        // identity and survivor sets are then unambiguous.
        let mut all: Vec<i64> = self
            .carried
            .iter()
            .copied()
            .chain(inserts.iter().map(|&(_, v)| v))
            .collect();
        all.sort_unstable();
        if all.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        let gone: HashSet<i64> = removed.into_iter().collect();
        let mut state: Vec<i64> = self
            .carried
            .iter()
            .copied()
            .filter(|v| !gone.contains(v))
            .collect();
        let mut survivors: Vec<(usize, i64)> = inserts
            .into_iter()
            .filter(|&(_, v)| !gone.contains(&v))
            .collect();
        survivors.sort_by_key(|&(i, _)| h.ops[i].call_pos);
        // Interval orders are transitive, so consecutive precedence
        // pins the total order of all survivors.
        for w in survivors.windows(2) {
            if !h.precedes(w[0].0, w[1].0) {
                return None;
            }
        }
        state.extend(survivors.into_iter().map(|(_, v)| v));
        Some(state)
    }

    /// Set path: final presence of a key = initial presence XOR parity
    /// of successful toggles (successful adds/removes of a key must
    /// alternate in any witness).
    fn set_end_state(&self) -> Option<Vec<i64>> {
        let mut toggles: BTreeMap<i64, u64> = BTreeMap::new();
        for op in &self.history.ops {
            match op.invocation.name.as_str() {
                "TryAdd" => {
                    let key = int_arg(op.invocation.args.first())?;
                    match op.response.as_ref()? {
                        Value::Bool(true) => *toggles.entry(key).or_insert(0) += 1,
                        Value::Bool(false) => {}
                        _ => return None,
                    }
                }
                "TryRemove" => {
                    let key = int_arg(op.invocation.args.first())?;
                    match op.response.as_ref()? {
                        Value::Opt(Some(_)) => *toggles.entry(key).or_insert(0) += 1,
                        Value::Fail => {}
                        _ => return None,
                    }
                }
                // Read-only queries never move the state.
                "ContainsKey" | "Count" => {}
                _ => return None,
            }
        }
        let initial: HashSet<i64> = self.carried.iter().copied().collect();
        let mut state: Vec<i64> = self.carried.clone();
        for (key, flips) in toggles {
            let before = initial.contains(&key);
            let after = before ^ (flips % 2 == 1);
            if after && !before {
                state.push(key);
            } else if !after && before {
                state.retain(|&v| v != key);
            }
        }
        state.sort_unstable();
        Some(state)
    }

    /// Priority-queue path: the state is a multiset, so the end state is
    /// `carried ⊎ inserts − extracted` regardless of linearization.
    fn pqueue_end_state(&self) -> Option<Vec<i64>> {
        let mut counts: BTreeMap<i64, i64> = BTreeMap::new();
        for &v in &self.carried {
            *counts.entry(v).or_insert(0) += 1;
        }
        // Two passes: an extract can precede its matching insert in
        // *call order* (the two overlap and the insert linearizes
        // first), so all inserts must be counted before any removal is
        // subtracted.
        let mut extracted: Vec<i64> = Vec::new();
        for op in &self.history.ops {
            match op.invocation.name.as_str() {
                "Insert" => {
                    *counts
                        .entry(int_arg(op.invocation.args.first())?)
                        .or_insert(0) += 1;
                }
                "ExtractMin" => match op.response.as_ref()? {
                    Value::Opt(Some(b)) => match **b {
                        Value::Int(v) => extracted.push(v),
                        _ => return None,
                    },
                    Value::Fail => {}
                    _ => return None,
                },
                _ => return None,
            }
        }
        for v in extracted {
            // Saturating at zero: a genuine deficit means the window is
            // not linearizable, so the check fails and the state is
            // never used.
            let c = counts.entry(v).or_insert(0);
            *c = (*c - 1).max(0);
        }
        let mut state = Vec::new();
        for (v, c) in counts {
            for _ in 0..c {
                state.push(v);
            }
        }
        Some(state)
    }
}

fn int_arg(arg: Option<&Value>) -> Option<i64> {
    match arg {
        Some(Value::Int(v)) => Some(*v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup_monitor::ideal_oracle;

    /// Streams a recorded history's events into a shard.
    fn feed(shard: &mut Shard, h: &History) {
        for ev in &h.events {
            match *ev {
                lineup::Event::Call(i) => {
                    let op = &h.ops[i];
                    shard
                        .call(
                            op.thread as u32,
                            &op.invocation.name,
                            op.invocation.args.clone(),
                        )
                        .unwrap();
                }
                lineup::Event::Return(i) => {
                    let op = &h.ops[i];
                    shard
                        .ret(op.thread as u32, op.response.clone().unwrap())
                        .unwrap();
                }
            }
        }
    }

    fn serial_history(script: &[(&str, i64, Value)]) -> History {
        let mut h = History::new(1);
        for (name, arg, resp) in script {
            let id = h.push_call(0, Invocation::with_int(*name, *arg));
            h.push_return(id, resp.clone());
        }
        h
    }

    #[test]
    fn serial_queue_stream_closes_windows_and_passes() {
        let mut shard = Shard::new(Some(AdtKind::Queue), 1, &ShardConfig { window_target: 4 });
        let mut script = Vec::new();
        for i in 0..32 {
            script.push(("Enqueue", i, Value::Unit));
        }
        for i in 0..32 {
            script.push(("TryDequeue", 0, Value::some(Value::int(i))));
        }
        feed(&mut shard, &serial_history(&script));
        shard.end(false);
        assert!(!shard.violated());
        assert!(shard.counters.windows_closed >= 2, "GC never ran");
        assert_eq!(shard.counters.violations, 0);
    }

    #[test]
    fn fifo_violation_is_caught_across_windows() {
        let mut shard = Shard::new(Some(AdtKind::Queue), 1, &ShardConfig { window_target: 4 });
        let mut script = Vec::new();
        for i in 0..8 {
            script.push(("Enqueue", i, Value::Unit));
        }
        // Dequeues in LIFO order: the offending op sits several closed
        // windows after the enqueues, so only the carried state can
        // convict it.
        for i in (0..8).rev() {
            script.push(("TryDequeue", 0, Value::some(Value::int(i))));
        }
        feed(&mut shard, &serial_history(&script));
        shard.end(false);
        assert!(shard.violated());
    }

    #[test]
    fn duplicate_values_hold_the_window_open() {
        let mut shard = Shard::new(Some(AdtKind::Stack), 1, &ShardConfig { window_target: 2 });
        let script = vec![
            ("Push", 5, Value::Unit),
            ("Push", 5, Value::Unit),
            ("TryPop", 0, Value::some(Value::int(5))),
            ("Push", 5, Value::Unit),
        ];
        feed(&mut shard, &serial_history(&script));
        assert!(shard.counters.windows_held > 0, "expected held windows");
        assert_eq!(shard.counters.windows_closed, 0);
        shard.end(false);
        assert!(!shard.violated());
        assert_eq!(shard.counters.windows_closed, 1);
    }

    #[test]
    fn overlapping_extract_before_insert_leaves_no_phantom_element() {
        // The extract *calls* before the insert it matches, so in call
        // order the removal precedes the addition. The window end state
        // is still the empty multiset; a phantom carried element would
        // falsely convict the trailing failed extract.
        let mut shard = Shard::new(
            Some(AdtKind::PriorityQueue),
            2,
            &ShardConfig { window_target: 1 },
        );
        shard.call(0, "ExtractMin", vec![]).unwrap();
        shard.call(1, "Insert", vec![Value::Int(29)]).unwrap();
        shard.ret(1, Value::Unit).unwrap();
        shard.ret(0, Value::some(Value::int(29))).unwrap();
        shard.call(0, "ExtractMin", vec![]).unwrap();
        shard.ret(0, Value::Fail).unwrap();
        shard.end(false);
        assert!(!shard.violated(), "phantom carried element");
        assert!(shard.counters.windows_closed >= 2);
    }

    #[test]
    fn kindless_objects_are_accounting_only() {
        let mut shard = Shard::new(None, 2, &ShardConfig { window_target: 2 });
        shard.call(0, "Whatever", vec![]).unwrap();
        shard.ret(0, Value::Unit).unwrap();
        shard.call(1, "Other", vec![]).unwrap();
        shard.ret(1, Value::Fail).unwrap();
        shard.end(false);
        assert!(!shard.violated());
        assert_eq!(shard.counters.ops, 2);
        assert_eq!(shard.counters.checks, 0);
        assert!(shard.counters.windows_retired > 0);
    }

    #[test]
    fn stuck_end_of_a_kinded_object_is_a_violation() {
        let mut shard = Shard::new(Some(AdtKind::Queue), 2, &ShardConfig::default());
        shard.call(0, "Enqueue", vec![Value::Int(1)]).unwrap();
        shard.ret(0, Value::Unit).unwrap();
        shard.call(1, "TryDequeue", vec![]).unwrap();
        shard.end(true);
        assert!(shard.violated(), "ideal oracles never block");
        assert_eq!(shard.counters.stuck_checks, 1);
    }

    #[test]
    fn incomplete_end_is_not_a_violation() {
        let mut shard = Shard::new(Some(AdtKind::Queue), 1, &ShardConfig::default());
        shard.call(0, "Enqueue", vec![Value::Int(1)]).unwrap();
        shard.end(false);
        assert!(!shard.violated());
        assert_eq!(shard.counters.incomplete, 1);
    }

    #[test]
    fn malformed_events_are_rejected_without_poisoning() {
        let mut shard = Shard::new(Some(AdtKind::Set), 1, &ShardConfig::default());
        assert_eq!(
            shard.ret(0, Value::Unit),
            Err(ShardError::ReturnWithoutCall(0))
        );
        assert_eq!(
            shard.call(7, "TryAdd", vec![Value::Int(1)]),
            Err(ShardError::UnknownThread(7))
        );
        shard.call(0, "TryAdd", vec![Value::Int(1)]).unwrap();
        assert_eq!(
            shard.call(0, "TryAdd", vec![Value::Int(2)]),
            Err(ShardError::DoubleCall(0))
        );
        shard.ret(0, Value::Bool(true)).unwrap();
        shard.end(false);
        assert!(!shard.violated());
        assert_eq!(shard.call(0, "TryAdd", vec![]), Err(ShardError::Ended));
    }

    #[test]
    fn shared_verdict_cache_skips_repeat_windows() {
        let cache = Arc::new(HistoryCache::new(4));
        let mut script = Vec::new();
        for i in 0..8 {
            script.push(("Enqueue", i, Value::Unit));
        }
        for i in 0..8 {
            script.push(("TryDequeue", 0, Value::some(Value::int(i))));
        }
        let h = serial_history(&script);
        let run = |cache: Arc<HistoryCache<bool>>| {
            let mut shard = Shard::new(Some(AdtKind::Queue), 1, &ShardConfig { window_target: 4 })
                .with_verdict_cache(cache);
            feed(&mut shard, &h);
            shard.end(false);
            assert!(!shard.violated());
            shard.counters.clone()
        };
        let first = run(cache.clone());
        assert_eq!(first.verdict_cache_hits, 0);
        assert!(first.checks > 0);
        // Same stream on a second object: every window verdict is
        // served from the shared cache, no monitor work at all.
        let second = run(cache.clone());
        assert_eq!(second.verdict_cache_hits, first.windows_closed);
        assert_eq!(second.checks, 0);
        assert_eq!(second.windows_closed, first.windows_closed);
        assert!(cache.hits() >= second.verdict_cache_hits);
    }

    #[test]
    fn verdict_cache_key_separates_kind_and_carried_state() {
        // A dequeue of 3 is fine after Enqueue(3) carried in, a
        // violation on a fresh queue: the key must not collide.
        let cache = Arc::new(HistoryCache::new(1));
        let mut good = Shard::new(Some(AdtKind::Queue), 1, &ShardConfig { window_target: 1 })
            .with_verdict_cache(cache.clone());
        feed(
            &mut good,
            &serial_history(&[
                ("Enqueue", 3, Value::Unit),
                ("TryDequeue", 0, Value::some(Value::int(3))),
            ]),
        );
        good.end(false);
        assert!(!good.violated());
        let mut bad = Shard::new(Some(AdtKind::Queue), 1, &ShardConfig { window_target: 1 })
            .with_verdict_cache(cache.clone());
        feed(
            &mut bad,
            &serial_history(&[("TryDequeue", 0, Value::some(Value::int(3)))]),
        );
        bad.end(false);
        assert!(bad.violated(), "cache key collided across carried states");
    }

    #[test]
    fn carried_state_matches_a_full_replay() {
        // Windowed ingest with tiny windows must agree with one offline
        // check of the whole stream, kind by kind.
        for kind in AdtKind::ALL {
            let (ins, rem) = match kind {
                AdtKind::Queue => ("Enqueue", "TryDequeue"),
                AdtKind::Stack => ("Push", "TryPop"),
                AdtKind::Set => ("TryAdd", "TryRemove"),
                AdtKind::PriorityQueue => ("Insert", "ExtractMin"),
            };
            let step = lineup_monitor::ideal_step(kind);
            let mut state: Vec<i64> = Vec::new();
            let mut h = History::new(1);
            let mut x: i64 = 0;
            for round in 0..40 {
                // Mixed inserts and removes, all values fresh.
                let inv = if round % 3 == 2 {
                    if kind == AdtKind::Set {
                        // Set removes are keyed; target the latest key.
                        Invocation::with_int(rem, x)
                    } else {
                        Invocation::new(rem)
                    }
                } else {
                    x += 1;
                    Invocation::with_int(ins, x)
                };
                match step(&state, &inv) {
                    lineup_monitor::StepResult::Returns(v, next) => {
                        let id = h.push_call(0, inv);
                        h.push_return(id, v);
                        state = next;
                    }
                    other => panic!("ideal step failed: {other:?}"),
                }
            }
            let mut shard = Shard::new(Some(kind), 1, &ShardConfig { window_target: 5 });
            feed(&mut shard, &h);
            shard.end(false);
            assert!(!shard.violated(), "{kind}: windowed ingest rejected");
            assert!(shard.counters.windows_closed >= 3, "{kind}: no GC");
            let offline = Monitor::new(ideal_oracle(kind)).with_adt_kind(kind);
            assert!(offline.check_full(&h, &[]), "{kind}: offline rejected");
        }
    }
}
