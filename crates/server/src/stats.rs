//! Aggregated service statistics: a periodic one-line form for logs and
//! a JSON form for scraping.

use lineup::FallbackReason;

use crate::shard::ShardCounters;

/// A point-in-time aggregate over all finished and live objects.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Seconds since the engine started.
    pub uptime_secs: f64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Objects currently live (registered, not ended).
    pub objects_live: usize,
    /// Object generations ended and folded into the totals.
    pub objects_finished: u64,
    /// Malformed records/events dropped.
    pub protocol_errors: u64,
    /// Operations currently buffered across all open windows — the
    /// number GC keeps bounded.
    pub buffered_ops: usize,
    /// Live objects currently flagged as violated.
    pub live_violations: u64,
    /// Monotonic counters summed over every object generation.
    pub counters: ShardCounters,
}

impl StatsSnapshot {
    /// Ingest rate in events per second since start.
    pub fn events_per_sec(&self) -> f64 {
        if self.uptime_secs > 0.0 {
            self.counters.events as f64 / self.uptime_secs
        } else {
            0.0
        }
    }

    /// The compact one-line form logged periodically.
    pub fn one_line(&self) -> String {
        let c = &self.counters;
        format!(
            "t={:.1}s events={} ({:.0}/s) ops={} objects={}+{} windows={} held={} retired={} \
             checks={} (spec={} fb={} cached={}) violations={} buffered={} peak={} errors={}",
            self.uptime_secs,
            c.events,
            self.events_per_sec(),
            c.ops,
            self.objects_live,
            self.objects_finished,
            c.windows_closed,
            c.windows_held,
            c.windows_retired,
            c.checks,
            c.paths.specialized_checks,
            c.paths.fallback_checks,
            c.verdict_cache_hits,
            c.violations,
            self.buffered_ops,
            c.peak_window_ops,
            self.protocol_errors,
        )
    }

    /// The full snapshot as a JSON object (hand-rolled: no serde in the
    /// offline build).
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut reasons = String::from("{");
        for (i, reason) in FallbackReason::ALL.iter().enumerate() {
            if i > 0 {
                reasons.push(',');
            }
            reasons.push_str(&format!(
                "\"{}\":{}",
                reason.label(),
                c.paths.fallback_reasons[reason.index()]
            ));
        }
        reasons.push('}');
        format!(
            concat!(
                "{{\"uptime_secs\":{:.3},\"connections\":{},\"objects_live\":{},",
                "\"objects_finished\":{},\"protocol_errors\":{},\"buffered_ops\":{},",
                "\"live_violations\":{},\"events\":{},\"events_per_sec\":{:.1},",
                "\"ops\":{},\"windows_closed\":{},\"windows_retired\":{},",
                "\"windows_held\":{},\"checks\":{},\"stuck_checks\":{},",
                "\"violations\":{},\"incomplete\":{},\"peak_window_ops\":{},",
                "\"specialized_checks\":{},\"fallback_checks\":{},",
                "\"fallback_reasons\":{},\"oracle_steps\":{},\"memo_hits\":{},",
                "\"verdict_cache_hits\":{}}}"
            ),
            self.uptime_secs,
            self.connections,
            self.objects_live,
            self.objects_finished,
            self.protocol_errors,
            self.buffered_ops,
            self.live_violations,
            c.events,
            self.events_per_sec(),
            c.ops,
            c.windows_closed,
            c.windows_retired,
            c.windows_held,
            c.checks,
            c.stuck_checks,
            c.violations,
            c.incomplete,
            c.peak_window_ops,
            c.paths.specialized_checks,
            c.paths.fallback_checks,
            reasons,
            c.oracle_steps,
            c.memo_hits,
            c.verdict_cache_hits,
        )
    }
}
