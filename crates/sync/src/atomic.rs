//! Interlocked (atomic) cells.

use lineup_sched::{
    log_access, register_object, schedule, schedule_access, AccessIntent, AccessKind, ObjId,
};

/// An atomic cell supporting interlocked operations, the model counterpart
/// of .NET's `Interlocked` family (and of `std::sync::atomic`).
///
/// Every operation is a schedule point under the model and is recorded in
/// the access log as a synchronizing access (so the happens-before race
/// detector of `lineup-checkers` treats it like the paper's interlocked
/// operations: racy by design, but never a *data* race — §5.6).
///
/// # Example
///
/// ```
/// use lineup_sync::Atomic;
///
/// let a = Atomic::new(41usize);
/// assert_eq!(a.fetch_add(1), 41);
/// assert_eq!(a.load(), 42);
/// assert_eq!(a.compare_exchange(42, 7), Ok(42));
/// assert_eq!(a.compare_exchange(42, 9), Err(7));
/// ```
#[derive(Debug)]
pub struct Atomic<T> {
    id: ObjId,
    value: std::sync::Mutex<T>,
}

impl<T: Copy + PartialEq> Atomic<T> {
    /// Creates a new atomic cell holding `value`.
    pub fn new(value: T) -> Self {
        Atomic {
            id: register_object(),
            value: std::sync::Mutex::new(value),
        }
    }

    /// Atomically reads the value.
    pub fn load(&self) -> T {
        // Declared a read: two loads commute, so partial-order reduction
        // never needs to explore both orders.
        schedule_access(self.id, AccessIntent::Read);
        let v = *self.value.lock().unwrap();
        log_access(self.id, AccessKind::AtomicLoad);
        v
    }

    /// Atomically writes the value.
    pub fn store(&self, value: T) {
        schedule(self.id);
        *self.value.lock().unwrap() = value;
        log_access(self.id, AccessKind::AtomicStore);
    }

    /// Atomically replaces the value, returning the previous one
    /// (.NET `Interlocked.Exchange`).
    pub fn swap(&self, value: T) -> T {
        schedule(self.id);
        let old = std::mem::replace(&mut *self.value.lock().unwrap(), value);
        log_access(self.id, AccessKind::AtomicRmw { success: true });
        old
    }

    /// Atomic compare-and-swap (.NET `Interlocked.CompareExchange`):
    /// if the current value equals `expected`, replaces it with `new` and
    /// returns `Ok(expected)`; otherwise leaves it unchanged and returns
    /// `Err(current)`.
    pub fn compare_exchange(&self, expected: T, new: T) -> Result<T, T> {
        schedule(self.id);
        let mut g = self.value.lock().unwrap();
        if *g == expected {
            *g = new;
            drop(g);
            log_access(self.id, AccessKind::AtomicRmw { success: true });
            Ok(expected)
        } else {
            let cur = *g;
            drop(g);
            log_access(self.id, AccessKind::AtomicRmw { success: false });
            Err(cur)
        }
    }

    /// Atomically applies `f` to the value, storing the result and
    /// returning the previous value. (A convenience not present in
    /// hardware; equivalent to a CAS loop that always succeeds, used where
    /// the modelled code would loop until its CAS succeeds and the loop
    /// body has no other effects.)
    pub fn fetch_update(&self, f: impl FnOnce(T) -> T) -> T {
        schedule(self.id);
        let mut g = self.value.lock().unwrap();
        let old = *g;
        *g = f(old);
        drop(g);
        log_access(self.id, AccessKind::AtomicRmw { success: true });
        old
    }
}

macro_rules! atomic_int_ops {
    ($($t:ty),*) => {$(
        impl Atomic<$t> {
            /// Atomically adds, returning the previous value
            /// (.NET `Interlocked.Add` returns the new value; this follows
            /// the Rust convention of returning the old one).
            pub fn fetch_add(&self, n: $t) -> $t {
                self.fetch_update(|v| v.wrapping_add(n))
            }

            /// Atomically subtracts, returning the previous value.
            pub fn fetch_sub(&self, n: $t) -> $t {
                self.fetch_update(|v| v.wrapping_sub(n))
            }
        }
    )*};
}

atomic_int_ops!(usize, u32, u64, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use lineup_sched::{explore, Config};
    use std::ops::ControlFlow;
    use std::sync::Arc;

    #[test]
    fn unmodelled_basic_ops() {
        let a = Atomic::new(5i64);
        assert_eq!(a.load(), 5);
        a.store(6);
        assert_eq!(a.swap(7), 6);
        assert_eq!(a.fetch_add(3), 7);
        assert_eq!(a.fetch_sub(10), 10);
        assert_eq!(a.load(), 0);
        assert_eq!(a.fetch_update(|v| v + 100), 0);
        assert_eq!(a.load(), 100);
    }

    #[test]
    fn unmodelled_bool_cas() {
        let a = Atomic::new(false);
        assert_eq!(a.compare_exchange(false, true), Ok(false));
        assert_eq!(a.compare_exchange(false, true), Err(true));
    }

    /// Two unsynchronized read-modify-write sequences built from separate
    /// load and store (i.e. *not* atomic) must lose an update in some
    /// interleaving, while fetch_add never does.
    #[test]
    fn model_finds_lost_update_with_split_rmw() {
        let results = std::cell::RefCell::new(Vec::new());
        let cell: std::rc::Rc<std::cell::RefCell<Option<Arc<Atomic<usize>>>>> =
            std::rc::Rc::new(std::cell::RefCell::new(None));
        let cell2 = std::rc::Rc::clone(&cell);
        explore(
            &Config::exhaustive(),
            move |ex| {
                let a = Arc::new(Atomic::new(0usize));
                *cell2.borrow_mut() = Some(Arc::clone(&a));
                for _ in 0..2 {
                    let a = Arc::clone(&a);
                    ex.spawn(move || {
                        let v = a.load();
                        a.store(v + 1);
                    });
                }
            },
            |_| {
                let a = cell.borrow().clone().unwrap();
                results.borrow_mut().push(*a.value.lock().unwrap());
                ControlFlow::Continue(())
            },
        );
        let results = results.into_inner();
        assert!(results.contains(&1), "some schedule loses an update");
        assert!(results.contains(&2), "some schedule keeps both updates");
    }

    /// fetch_add is atomic: no schedule loses an update.
    #[test]
    fn model_fetch_add_never_loses_updates() {
        let results = std::cell::RefCell::new(Vec::new());
        let cell: std::rc::Rc<std::cell::RefCell<Option<Arc<Atomic<usize>>>>> =
            std::rc::Rc::new(std::cell::RefCell::new(None));
        let cell2 = std::rc::Rc::clone(&cell);
        explore(
            &Config::exhaustive(),
            move |ex| {
                let a = Arc::new(Atomic::new(0usize));
                *cell2.borrow_mut() = Some(Arc::clone(&a));
                for _ in 0..2 {
                    let a = Arc::clone(&a);
                    ex.spawn(move || {
                        a.fetch_add(1);
                    });
                }
            },
            |_| {
                let a = cell.borrow().clone().unwrap();
                results.borrow_mut().push(*a.value.lock().unwrap());
                ControlFlow::Continue(())
            },
        );
        assert!(results.into_inner().iter().all(|&v| v == 2));
    }

    /// CAS retry loops terminate and are atomic under the model.
    #[test]
    fn model_cas_loop_is_atomic() {
        let results = std::cell::RefCell::new(Vec::new());
        let cell: std::rc::Rc<std::cell::RefCell<Option<Arc<Atomic<usize>>>>> =
            std::rc::Rc::new(std::cell::RefCell::new(None));
        let cell2 = std::rc::Rc::clone(&cell);
        explore(
            &Config::exhaustive(),
            move |ex| {
                let a = Arc::new(Atomic::new(0usize));
                *cell2.borrow_mut() = Some(Arc::clone(&a));
                for _ in 0..2 {
                    let a = Arc::clone(&a);
                    ex.spawn(move || loop {
                        let v = a.load();
                        if a.compare_exchange(v, v + 1).is_ok() {
                            break;
                        }
                    });
                }
            },
            |run| {
                assert_eq!(run.outcome, lineup_sched::RunOutcome::Complete);
                let a = cell.borrow().clone().unwrap();
                results.borrow_mut().push(*a.value.lock().unwrap());
                ControlFlow::Continue(())
            },
        );
        assert!(results.into_inner().iter().all(|&v| v == 2));
    }
}
