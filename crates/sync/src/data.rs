//! Plain (non-volatile) shared fields.

use lineup_sched::{
    log_access, register_object, schedule, schedule_access, AccessIntent, AccessKind, ObjId,
};

/// A plain shared field: reads and writes are schedule points and are
/// logged as *data* accesses, so conflicting unordered accesses show up in
/// the happens-before race detector of `lineup-checkers` (paper §5.6).
///
/// Components use `DataCell` for fields that the original .NET code left
/// non-volatile because every access happens under a lock; accessing one
/// outside the lock is exactly the kind of mistake race detection exists
/// to find.
///
/// # Example
///
/// ```
/// use lineup_sync::DataCell;
///
/// let items = DataCell::new(vec![1, 2, 3]);
/// items.with_mut(|v| v.push(4));
/// assert_eq!(items.with(|v| v.len()), 4);
/// ```
#[derive(Debug)]
pub struct DataCell<T> {
    id: ObjId,
    value: std::sync::Mutex<T>,
}

impl<T> DataCell<T> {
    /// Creates a new cell holding `value`.
    pub fn new(value: T) -> Self {
        DataCell {
            id: register_object(),
            value: std::sync::Mutex::new(value),
        }
    }

    /// Reads through a closure (a data read).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // Declared a read for partial-order reduction: reads commute.
        schedule_access(self.id, AccessIntent::Read);
        let g = self.value.lock().unwrap();
        let r = f(&g);
        drop(g);
        log_access(self.id, AccessKind::ReadData);
        r
    }

    /// Writes through a closure (a data write).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        schedule(self.id);
        let mut g = self.value.lock().unwrap();
        let r = f(&mut g);
        drop(g);
        log_access(self.id, AccessKind::WriteData);
        r
    }

    /// Replaces the value, returning the old one (a data write).
    pub fn replace(&self, value: T) -> T {
        self.with_mut(|v| std::mem::replace(v, value))
    }

    /// Stores a new value (a data write).
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}

impl<T: Copy> DataCell<T> {
    /// Reads the value (a data read).
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }
}

impl<T: Clone> DataCell<T> {
    /// Clones the value out (a data read).
    pub fn get_clone(&self) -> T {
        self.with(|v| v.clone())
    }
}

impl<T: Default> DataCell<T> {
    /// Takes the value, leaving the default (a data write).
    pub fn take(&self) -> T {
        self.with_mut(std::mem::take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let c = DataCell::new(1u32);
        assert_eq!(c.get(), 1);
        c.set(2);
        assert_eq!(c.replace(3), 2);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn non_copy_values() {
        let c = DataCell::new(String::from("a"));
        c.with_mut(|s| s.push('b'));
        assert_eq!(c.get_clone(), "ab");
        assert_eq!(c.take(), "ab");
        assert_eq!(c.get_clone(), "");
    }
}
