//! Instrumented synchronization primitives scheduled by
//! [`lineup-sched`](lineup_sched).
//!
//! The concurrent components under test (the `lineup-collections` crate, or
//! any user component) are written against these types instead of
//! `std::sync`. Every operation is a *schedule point*: under a model
//! execution the scheduler may switch threads there, which is how the
//! Line-Up checker enumerates all interleavings of a test (paper §3.2).
//! Outside a model execution the same operations degrade to plain,
//! unsynchronized accesses so the components remain usable for ordinary
//! single-threaded work and doc examples (blocking operations are the one
//! exception: they require the model scheduler).
//!
//! The vocabulary mirrors what the paper's .NET 4.0 subjects use:
//!
//! * [`Atomic`] — interlocked operations (`Interlocked.CompareExchange`,
//!   `Interlocked.Increment`, …),
//! * [`VolatileCell`] — `volatile` fields,
//! * [`DataCell`] — plain (non-volatile) fields, which participate in data
//!   race detection,
//! * [`Mutex`] — a plain lock, including the *timed* acquire
//!   (`Monitor.TryEnter(lock, timeout)`) whose modelled timeout exposes
//!   the paper's Fig. 1 bug,
//! * [`Monitor`] — a .NET-style monitor with `Wait`/`Pulse`/`PulseAll`,
//! * [`RwLock`] — a writer-preferring reader–writer lock
//!   (`ReaderWriterLockSlim`),
//! * [`spin`] — spin-wait helpers that cooperate with the fair scheduler.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod data;
pub mod monitor;
pub mod mutex;
pub mod rwlock;
pub mod spin;
pub mod volatile;

pub use atomic::Atomic;
pub use data::DataCell;
pub use monitor::Monitor;
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::RwLock;
pub use volatile::VolatileCell;
