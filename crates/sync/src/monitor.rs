//! .NET-style monitors: a reentrant lock with `Wait`/`Pulse`/`PulseAll`.

use lineup_sched::{
    block_current, log_access, register_object, schedule, unblock, AccessKind, BlockKind,
    BlockResult, ObjId, ThreadId,
};

/// A monitor in the .NET sense: a reentrant lock plus a condition queue.
///
/// `Wait` releases the lock and blocks until another thread `Pulse`s the
/// monitor while holding the lock; the woken thread then re-acquires the
/// lock before returning (re-entering at its previous recursion depth).
/// Unlike POSIX condition variables there are no spurious wakeups, which
/// matters for reproducing lost-pulse bugs faithfully: a waiter that is
/// never pulsed blocks forever, producing the stuck histories of the
/// paper's §2.3 instead of silently re-checking.
///
/// # Example
///
/// ```
/// use lineup_sync::Monitor;
///
/// let m = Monitor::new();
/// m.enter();
/// m.pulse_all(); // no waiters: a no-op
/// m.exit();
/// ```
#[derive(Debug)]
pub struct Monitor {
    id: ObjId,
    inner: std::sync::Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    owner: Option<ThreadId>,
    depth: usize,
    lock_waiters: Vec<ThreadId>,
    cond_waiters: Vec<ThreadId>,
}

impl Monitor {
    /// Creates a new monitor.
    pub fn new() -> Self {
        Monitor {
            id: register_object(),
            inner: std::sync::Mutex::new(Inner::default()),
        }
    }

    /// Enters (acquires) the monitor, blocking until available.
    /// Re-entering from the owning thread increases the recursion depth.
    pub fn enter(&self) {
        let me = lineup_sched::current_thread();
        loop {
            schedule(self.id);
            {
                let mut g = self.inner.lock().unwrap();
                if g.owner == Some(me) {
                    g.depth += 1;
                    return;
                }
                if g.owner.is_none() {
                    g.owner = Some(me);
                    g.depth = 1;
                    drop(g);
                    log_access(self.id, AccessKind::LockAcquire);
                    return;
                }
                g.lock_waiters.push(me);
            }
            let _ = block_current(BlockKind::Untimed);
        }
    }

    /// Exits (releases) the monitor once; the lock is freed when the
    /// recursion depth reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor.
    pub fn exit(&self) {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let waiters = {
            let mut g = self.inner.lock().unwrap();
            assert_eq!(g.owner, Some(me), "exit by non-owner");
            g.depth -= 1;
            if g.depth > 0 {
                return;
            }
            g.owner = None;
            std::mem::take(&mut g.lock_waiters)
        };
        for w in waiters {
            unblock(w);
        }
        log_access(self.id, AccessKind::LockRelease);
    }

    /// Releases the monitor fully and blocks until pulsed, then
    /// re-acquires at the previous depth. Returns only after being pulsed.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor, or when
    /// called outside a model execution.
    pub fn wait(&self) {
        assert!(self.wait_inner(false), "untimed wait cannot time out");
    }

    /// Like [`wait`](Monitor::wait), but with a modelled timeout
    /// (`Monitor.Wait(obj, timeout)`): the scheduler may run the waiter
    /// before it is pulsed, in which case this returns `false` (after
    /// re-acquiring the lock).
    pub fn wait_timed(&self) -> bool {
        self.wait_inner(true)
    }

    fn wait_inner(&self, timed: bool) -> bool {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let saved_depth;
        {
            let mut g = self.inner.lock().unwrap();
            assert_eq!(g.owner, Some(me), "wait by non-owner");
            saved_depth = g.depth;
            g.owner = None;
            g.depth = 0;
            g.cond_waiters.push(me);
            let waiters = std::mem::take(&mut g.lock_waiters);
            drop(g);
            for w in waiters {
                unblock(w);
            }
        }
        log_access(self.id, AccessKind::MonitorWait);
        let pulsed = match block_current(if timed {
            BlockKind::Timed
        } else {
            BlockKind::Untimed
        }) {
            BlockResult::Resumed => true,
            BlockResult::TimedOut => {
                let mut g = self.inner.lock().unwrap();
                g.cond_waiters.retain(|&t| t != me);
                false
            }
        };
        // Re-acquire at the saved depth.
        self.enter();
        {
            let mut g = self.inner.lock().unwrap();
            g.depth = saved_depth;
        }
        pulsed
    }

    /// Wakes the longest-waiting thread (if any). The woken thread
    /// contends for the lock once the pulser exits.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor.
    pub fn pulse(&self) {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let woken = {
            let mut g = self.inner.lock().unwrap();
            assert_eq!(g.owner, Some(me), "pulse by non-owner");
            if g.cond_waiters.is_empty() {
                None
            } else {
                Some(g.cond_waiters.remove(0))
            }
        };
        if let Some(w) = woken {
            unblock(w);
        }
        log_access(self.id, AccessKind::MonitorPulse { all: false });
    }

    /// Wakes all waiting threads.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor.
    pub fn pulse_all(&self) {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let woken = {
            let mut g = self.inner.lock().unwrap();
            assert_eq!(g.owner, Some(me), "pulse by non-owner");
            std::mem::take(&mut g.cond_waiters)
        };
        for w in woken {
            unblock(w);
        }
        log_access(self.id, AccessKind::MonitorPulse { all: true });
    }

    /// Whether the monitor is currently owned. For assertions.
    pub fn is_held(&self) -> bool {
        self.inner.lock().unwrap().owner.is_some()
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataCell;
    use lineup_sched::{explore, Config, RunOutcome};
    use std::ops::ControlFlow;
    use std::sync::Arc;

    #[test]
    fn unmodelled_enter_exit_reentrant() {
        let m = Monitor::new();
        m.enter();
        m.enter();
        assert!(m.is_held());
        m.exit();
        assert!(m.is_held());
        m.exit();
        assert!(!m.is_held());
    }

    #[test]
    #[should_panic(expected = "pulse by non-owner")]
    fn pulse_requires_ownership() {
        Monitor::new().pulse();
    }

    /// The classic producer/consumer handshake: the consumer waits until
    /// the producer sets the flag and pulses. All schedules complete.
    #[test]
    fn model_wait_pulse_handshake() {
        let stats = explore(
            &Config::exhaustive(),
            |ex| {
                let m = Arc::new(Monitor::new());
                let ready = Arc::new(DataCell::new(false));
                let (m2, r2) = (Arc::clone(&m), Arc::clone(&ready));
                ex.spawn(move || {
                    m.enter();
                    while !ready.get() {
                        m.wait();
                    }
                    m.exit();
                });
                ex.spawn(move || {
                    m2.enter();
                    r2.set(true);
                    m2.pulse_all();
                    m2.exit();
                });
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete, "{:?}", run.schedule);
                ControlFlow::Continue(())
            },
        );
        assert!(stats.complete > 0);
    }

    /// A waiter that is never pulsed deadlocks — exactly the stuck
    /// histories Line-Up's generalized linearizability needs (§2.3).
    #[test]
    fn model_unpulsed_wait_deadlocks() {
        let stats = explore(
            &Config::exhaustive(),
            |ex| {
                let m = Arc::new(Monitor::new());
                ex.spawn(move || {
                    m.enter();
                    m.wait();
                    m.exit();
                });
            },
            |_| ControlFlow::Continue(()),
        );
        assert_eq!(stats.deadlock, stats.runs);
    }

    /// Timed wait can fire and return false; the waiter still re-acquires
    /// the lock and completes.
    #[test]
    fn model_timed_wait_can_time_out() {
        let mut outcomes = std::collections::BTreeSet::new();
        let probe = lineup_sched::Probe::new();
        let setup_probe = probe.clone();
        let stats = explore(
            &Config::exhaustive(),
            move |ex| {
                let m = Arc::new(Monitor::new());
                let got = Arc::new(DataCell::new(None));
                setup_probe.put(Arc::clone(&got));
                let m2 = Arc::clone(&m);
                ex.spawn(move || {
                    m.enter();
                    let pulsed = m.wait_timed();
                    m.exit();
                    got.set(Some(pulsed));
                });
                ex.spawn(move || {
                    m2.enter();
                    m2.pulse();
                    m2.exit();
                });
            },
            |run| {
                let got = probe.take();
                if run.outcome == RunOutcome::Complete {
                    outcomes.insert(got.get().unwrap());
                }
                ControlFlow::Continue(())
            },
        );
        assert!(outcomes.contains(&false), "timeout fires in some schedule");
        assert!(outcomes.contains(&true), "pulse lands in some schedule");
        // A pulse that finds no waiter plus a wait that times out is fine;
        // nothing should deadlock here: the waiter can always time out.
        assert_eq!(stats.deadlock, 0);
    }

    /// pulse (single) wakes exactly one of two waiters; pulse_all wakes
    /// both.
    #[test]
    fn model_pulse_one_vs_all() {
        // With a single pulse, one waiter stays blocked: deadlock in all
        // schedules.
        let stats_one = explore(
            &Config::preemption_bounded(2),
            |ex| {
                let m = Arc::new(Monitor::new());
                for _ in 0..2 {
                    let m = Arc::clone(&m);
                    ex.spawn(move || {
                        m.enter();
                        m.wait();
                        m.exit();
                    });
                }
                let m3 = Arc::clone(&m);
                ex.spawn(move || {
                    m3.enter();
                    m3.pulse();
                    m3.exit();
                });
            },
            |_| ControlFlow::Continue(()),
        );
        assert!(stats_one.complete == 0);
        assert!(stats_one.deadlock > 0);

        // pulse_all after both waits: schedules where the pulser runs last
        // complete.
        let stats_all = explore(
            &Config::preemption_bounded(2),
            |ex| {
                let m = Arc::new(Monitor::new());
                for _ in 0..2 {
                    let m = Arc::clone(&m);
                    ex.spawn(move || {
                        m.enter();
                        m.wait();
                        m.exit();
                    });
                }
                let m3 = Arc::clone(&m);
                ex.spawn(move || {
                    m3.enter();
                    m3.pulse_all();
                    m3.exit();
                });
            },
            |_| ControlFlow::Continue(()),
        );
        assert!(stats_all.complete > 0);
    }
}
