//! Locks, including the modelled timed acquire.

use lineup_sched::{
    block_current, log_access, register_object, schedule, unblock, AccessKind, BlockKind,
    BlockResult, ObjId, ThreadId,
};

/// A non-reentrant lock.
///
/// Besides plain [`acquire`](Mutex::acquire)/[`release`](Mutex::release)
/// (usable RAII-style through [`lock`](Mutex::lock)), the type models
/// .NET's `Monitor.TryEnter(lock, timeout)` as
/// [`acquire_timed`](Mutex::acquire_timed): when the lock is contended,
/// the scheduler may *choose* to fire the timeout, making the acquire fail
/// spuriously. This is the mechanism behind the paper's Fig. 1 bug, where
/// a `TryTake` was "caused by accidentally allowing a lock acquire ... to
/// time out". In serial executions the lock is never contended, so timed
/// acquires are deterministic there — exactly why Line-Up phase 1 still
/// synthesizes a deterministic specification for such code.
///
/// The lock does not protect data by itself; pair it with
/// [`DataCell`](crate::DataCell) fields, as the .NET originals pair
/// `object` locks with plain fields.
///
/// # Example
///
/// ```
/// use lineup_sync::{DataCell, Mutex};
///
/// let lock = Mutex::new();
/// let count = DataCell::new(0);
/// {
///     let _guard = lock.lock();
///     count.set(count.get() + 1);
/// }
/// assert_eq!(count.get(), 1);
/// ```
#[derive(Debug)]
pub struct Mutex {
    id: ObjId,
    inner: std::sync::Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    owner: Option<ThreadId>,
    waiters: Vec<ThreadId>,
}

impl Mutex {
    /// Creates a new, unowned lock.
    pub fn new() -> Self {
        Mutex {
            id: register_object(),
            inner: std::sync::Mutex::new(Inner::default()),
        }
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread already owns the lock, or when forced
    /// to block outside a model execution.
    pub fn acquire(&self) {
        let me = lineup_sched::current_thread();
        loop {
            schedule(self.id);
            {
                let mut g = self.inner.lock().unwrap();
                assert_ne!(g.owner, Some(me), "Mutex is not reentrant");
                if g.owner.is_none() {
                    g.owner = Some(me);
                    drop(g);
                    log_access(self.id, AccessKind::LockAcquire);
                    return;
                }
                g.waiters.push(me);
            }
            let _ = block_current(BlockKind::Untimed);
        }
    }

    /// Attempts to acquire the lock without blocking; returns whether it
    /// was acquired.
    pub fn try_acquire(&self) -> bool {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let mut g = self.inner.lock().unwrap();
        if g.owner.is_none() {
            g.owner = Some(me);
            drop(g);
            log_access(self.id, AccessKind::LockAcquire);
            true
        } else {
            false
        }
    }

    /// Acquires the lock with a modelled timeout: if the lock is held, the
    /// scheduler nondeterministically either grants the lock once released
    /// or fires the timeout, in which case this returns `false`.
    ///
    /// Models `Monitor.TryEnter(lock, timeout)`. Deterministic (always
    /// `true`) when uncontended — in particular in serial executions.
    pub fn acquire_timed(&self) -> bool {
        let me = lineup_sched::current_thread();
        loop {
            schedule(self.id);
            {
                let mut g = self.inner.lock().unwrap();
                assert_ne!(g.owner, Some(me), "Mutex is not reentrant");
                if g.owner.is_none() {
                    g.owner = Some(me);
                    drop(g);
                    log_access(self.id, AccessKind::LockAcquire);
                    return true;
                }
                g.waiters.push(me);
            }
            match block_current(BlockKind::Timed) {
                BlockResult::Resumed => continue,
                BlockResult::TimedOut => {
                    let mut g = self.inner.lock().unwrap();
                    g.waiters.retain(|&t| t != me);
                    return false;
                }
            }
        }
    }

    /// Releases the lock and wakes all waiters (they re-contend).
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the lock.
    pub fn release(&self) {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let waiters = {
            let mut g = self.inner.lock().unwrap();
            assert_eq!(g.owner, Some(me), "release by non-owner");
            g.owner = None;
            std::mem::take(&mut g.waiters)
        };
        for w in waiters {
            unblock(w);
        }
        log_access(self.id, AccessKind::LockRelease);
    }

    /// Acquires the lock and returns an RAII guard releasing it on drop.
    pub fn lock(&self) -> MutexGuard<'_> {
        self.acquire();
        MutexGuard { mutex: self }
    }

    /// Whether the lock is currently held (by anyone). For assertions.
    pub fn is_held(&self) -> bool {
        self.inner.lock().unwrap().owner.is_some()
    }
}

impl Default for Mutex {
    fn default() -> Self {
        Mutex::new()
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a> {
    mutex: &'a Mutex,
}

impl Drop for MutexGuard<'_> {
    fn drop(&mut self) {
        self.mutex.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataCell;
    use lineup_sched::{explore, Config, RunOutcome};
    use std::ops::ControlFlow;
    use std::sync::Arc;

    #[test]
    fn unmodelled_acquire_release() {
        let m = Mutex::new();
        assert!(!m.is_held());
        m.acquire();
        assert!(m.is_held());
        m.release();
        assert!(!m.is_held());
        assert!(m.try_acquire());
        assert!(!m.try_acquire());
        m.release();
        assert!(m.acquire_timed());
        m.release();
    }

    #[test]
    #[should_panic(expected = "release by non-owner")]
    fn release_without_acquire_panics() {
        Mutex::new().release();
    }

    /// Mutual exclusion: increments under the lock are never lost.
    #[test]
    fn model_mutual_exclusion() {
        let mut finals = Vec::new();
        let probe = lineup_sched::Probe::new();
        let setup_probe = probe.clone();
        explore(
            &Config::exhaustive(),
            move |ex| {
                let m = Arc::new(Mutex::new());
                let c = Arc::new(DataCell::new(0u32));
                setup_probe.put(Arc::clone(&c));
                for _ in 0..2 {
                    let m = Arc::clone(&m);
                    let c = Arc::clone(&c);
                    ex.spawn(move || {
                        m.acquire();
                        let v = c.get();
                        c.set(v + 1);
                        m.release();
                    });
                }
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                finals.push(probe.take().get());
                ControlFlow::Continue(())
            },
        );
        assert!(!finals.is_empty());
        assert!(finals.iter().all(|&v| v == 2));
    }

    /// Without the lock, the same increments lose updates somewhere.
    #[test]
    fn model_without_lock_loses_updates() {
        let mut finals = Vec::new();
        let probe = lineup_sched::Probe::new();
        let setup_probe = probe.clone();
        explore(
            &Config::exhaustive(),
            move |ex| {
                let c = Arc::new(DataCell::new(0u32));
                setup_probe.put(Arc::clone(&c));
                for _ in 0..2 {
                    let c = Arc::clone(&c);
                    ex.spawn(move || {
                        let v = c.get();
                        c.set(v + 1);
                    });
                }
            },
            |_| {
                finals.push(probe.take().get());
                ControlFlow::Continue(())
            },
        );
        assert!(finals.contains(&1));
    }

    /// A thread that forgets to release deadlocks the other acquirer.
    #[test]
    fn model_missing_release_deadlocks() {
        let stats = explore(
            &Config::exhaustive(),
            |ex| {
                let m = Arc::new(Mutex::new());
                let m2 = Arc::clone(&m);
                ex.spawn(move || {
                    m.acquire(); // never released
                });
                ex.spawn(move || {
                    m2.acquire();
                    m2.release();
                });
            },
            |_| ControlFlow::Continue(()),
        );
        assert!(stats.deadlock > 0, "some schedule deadlocks");
        assert!(
            stats.complete > 0,
            "thread 2 first, then thread 1 completes"
        );
    }

    /// acquire_timed under contention can fail, and can also succeed after
    /// the holder releases.
    #[test]
    fn model_timed_acquire_both_outcomes() {
        let mut outcomes = std::collections::BTreeSet::new();
        let probe = lineup_sched::Probe::new();
        let setup_probe = probe.clone();
        explore(
            &Config::exhaustive(),
            move |ex| {
                let m = Arc::new(Mutex::new());
                let got = Arc::new(DataCell::new(None));
                setup_probe.put(Arc::clone(&got));
                let m2 = Arc::clone(&m);
                ex.spawn(move || {
                    m.acquire();
                    m.release();
                });
                ex.spawn(move || {
                    let ok = m2.acquire_timed();
                    if ok {
                        m2.release();
                    }
                    got.set(Some(ok));
                });
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                outcomes.insert(probe.take().get().unwrap());
                ControlFlow::Continue(())
            },
        );
        assert!(outcomes.contains(&true), "uncontended or granted");
        assert!(outcomes.contains(&false), "timeout fires in some schedule");
    }

    /// In serial mode acquire_timed never fails (no contention).
    #[test]
    fn serial_timed_acquire_is_deterministic() {
        let stats = explore(
            &Config::serial(),
            |ex| {
                let m = Arc::new(Mutex::new());
                for _ in 0..2 {
                    let m = Arc::clone(&m);
                    ex.spawn(move || {
                        lineup_sched::op_boundary();
                        assert!(m.acquire_timed());
                        m.release();
                    });
                }
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(stats.complete, stats.runs);
    }

    /// RAII guard releases on drop, including on unwind-free early return.
    #[test]
    fn guard_releases() {
        let m = Mutex::new();
        {
            let _g = m.lock();
            assert!(m.is_held());
        }
        assert!(!m.is_held());
    }
}
