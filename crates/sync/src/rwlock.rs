//! A reader–writer lock (in the spirit of .NET's `ReaderWriterLockSlim`).

use lineup_sched::{
    block_current, log_access, register_object, schedule, unblock, AccessKind, BlockKind, ObjId,
    ThreadId,
};

/// A writer-preferring reader–writer lock.
///
/// Any number of readers may hold the lock simultaneously; writers get
/// exclusive access. Once a writer is waiting, new readers queue behind it
/// (writer preference), so writers cannot starve under a steady reader
/// stream.
///
/// # Example
///
/// ```
/// use lineup_sync::RwLock;
///
/// let l = RwLock::new();
/// l.acquire_read();
/// l.acquire_read(); // readers share
/// l.release_read();
/// l.release_read();
/// l.acquire_write();
/// l.release_write();
/// ```
#[derive(Debug)]
pub struct RwLock {
    id: ObjId,
    inner: std::sync::Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    readers: usize,
    writer: Option<ThreadId>,
    waiting_writers: Vec<ThreadId>,
    waiting_readers: Vec<ThreadId>,
}

impl RwLock {
    /// Creates a new, unowned lock.
    pub fn new() -> Self {
        RwLock {
            id: register_object(),
            inner: std::sync::Mutex::new(Inner::default()),
        }
    }

    /// Acquires the lock for shared (read) access.
    pub fn acquire_read(&self) {
        let me = lineup_sched::current_thread();
        loop {
            schedule(self.id);
            {
                let mut g = self.inner.lock().unwrap();
                // Writer preference: readers wait while a writer holds or
                // waits.
                if g.writer.is_none() && g.waiting_writers.is_empty() {
                    g.readers += 1;
                    drop(g);
                    log_access(self.id, AccessKind::LockAcquire);
                    return;
                }
                g.waiting_readers.push(me);
            }
            let _ = block_current(BlockKind::Untimed);
        }
    }

    /// Releases shared access.
    ///
    /// # Panics
    ///
    /// Panics if no reader holds the lock.
    pub fn release_read(&self) {
        schedule(self.id);
        let woken = {
            let mut g = self.inner.lock().unwrap();
            assert!(g.readers > 0, "release_read without a read hold");
            g.readers -= 1;
            if g.readers == 0 {
                std::mem::take(&mut g.waiting_writers)
            } else {
                Vec::new()
            }
        };
        for w in woken {
            unblock(w);
        }
        log_access(self.id, AccessKind::LockRelease);
    }

    /// Acquires the lock for exclusive (write) access.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread already holds write access.
    pub fn acquire_write(&self) {
        let me = lineup_sched::current_thread();
        loop {
            schedule(self.id);
            {
                let mut g = self.inner.lock().unwrap();
                assert_ne!(g.writer, Some(me), "RwLock write is not reentrant");
                if g.writer.is_none() && g.readers == 0 {
                    g.writer = Some(me);
                    // No longer waiting (re-acquisition path).
                    g.waiting_writers.retain(|&t| t != me);
                    drop(g);
                    log_access(self.id, AccessKind::LockAcquire);
                    return;
                }
                if !g.waiting_writers.contains(&me) {
                    g.waiting_writers.push(me);
                }
            }
            let _ = block_current(BlockKind::Untimed);
        }
    }

    /// Releases exclusive access, waking waiting writers first (writer
    /// preference) or all waiting readers.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not hold write access.
    pub fn release_write(&self) {
        let me = lineup_sched::current_thread();
        schedule(self.id);
        let woken = {
            let mut g = self.inner.lock().unwrap();
            assert_eq!(g.writer, Some(me), "release_write by non-writer");
            g.writer = None;
            if g.waiting_writers.is_empty() {
                std::mem::take(&mut g.waiting_readers)
            } else {
                // Wake everyone; writer preference is enforced at
                // re-acquisition (readers re-check the waiting-writer set).
                let mut all = std::mem::take(&mut g.waiting_writers);
                all.extend(std::mem::take(&mut g.waiting_readers));
                all
            }
        };
        for w in woken {
            unblock(w);
        }
        log_access(self.id, AccessKind::LockRelease);
    }

    /// Current number of read holds (for assertions).
    pub fn reader_count(&self) -> usize {
        self.inner.lock().unwrap().readers
    }

    /// Whether a writer currently holds the lock (for assertions).
    pub fn is_write_held(&self) -> bool {
        self.inner.lock().unwrap().writer.is_some()
    }
}

impl Default for RwLock {
    fn default() -> Self {
        RwLock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataCell;
    use lineup_sched::{explore, Config, Probe, RunOutcome};
    use std::ops::ControlFlow;
    use std::sync::Arc;

    #[test]
    fn unmodelled_read_write_cycle() {
        let l = RwLock::new();
        l.acquire_read();
        l.acquire_read();
        assert_eq!(l.reader_count(), 2);
        l.release_read();
        l.release_read();
        l.acquire_write();
        assert!(l.is_write_held());
        l.release_write();
        assert!(!l.is_write_held());
    }

    #[test]
    #[should_panic(expected = "release_read without a read hold")]
    fn release_read_unheld_panics() {
        RwLock::new().release_read();
    }

    /// Two readers and a writer over a shared cell: readers never observe
    /// a torn value, the writer's update is never lost, and nothing
    /// deadlocks in any schedule.
    #[test]
    fn model_readers_and_writer() {
        let probe: Probe<Arc<DataCell<(u32, u32)>>> = Probe::new();
        let setup_probe = probe.clone();
        let stats = explore(
            &Config::preemption_bounded(2),
            move |ex| {
                let l = Arc::new(RwLock::new());
                // A "wide" value written non-atomically in two steps under
                // the write lock; readers must never see them mismatched.
                let cell = Arc::new(DataCell::new((0u32, 0u32)));
                setup_probe.put(Arc::clone(&cell));
                for _ in 0..2 {
                    let l = Arc::clone(&l);
                    let cell = Arc::clone(&cell);
                    ex.spawn(move || {
                        l.acquire_read();
                        let (a, b) = cell.get();
                        assert_eq!(a, b, "readers see consistent halves");
                        l.release_read();
                    });
                }
                let lw = Arc::clone(&l);
                let cw = Arc::clone(&cell);
                ex.spawn(move || {
                    lw.acquire_write();
                    cw.with_mut(|v| v.0 = 1);
                    cw.with_mut(|v| v.1 = 1);
                    lw.release_write();
                });
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete, "no deadlock");
                assert_eq!(probe.take().get(), (1, 1), "write never lost");
                ControlFlow::Continue(())
            },
        );
        assert!(stats.complete > 0);
    }

    /// Two writers exclude each other (no lost updates).
    #[test]
    fn model_writers_exclude() {
        let probe: Probe<Arc<DataCell<u32>>> = Probe::new();
        let setup_probe = probe.clone();
        explore(
            &Config::preemption_bounded(2),
            move |ex| {
                let l = Arc::new(RwLock::new());
                let c = Arc::new(DataCell::new(0u32));
                setup_probe.put(Arc::clone(&c));
                for _ in 0..2 {
                    let l = Arc::clone(&l);
                    let c = Arc::clone(&c);
                    ex.spawn(move || {
                        l.acquire_write();
                        let v = c.get();
                        c.set(v + 1);
                        l.release_write();
                    });
                }
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                assert_eq!(probe.take().get(), 2);
                ControlFlow::Continue(())
            },
        );
    }

    /// Writer preference: with a continuous reader and a waiting writer,
    /// every schedule completes (the writer is not starved into livelock).
    #[test]
    fn model_writer_not_starved() {
        let stats = explore(
            &Config::preemption_bounded(2),
            |ex| {
                let l = Arc::new(RwLock::new());
                let l2 = Arc::clone(&l);
                ex.spawn(move || {
                    for _ in 0..2 {
                        l.acquire_read();
                        l.release_read();
                    }
                });
                ex.spawn(move || {
                    l2.acquire_write();
                    l2.release_write();
                });
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                ControlFlow::Continue(())
            },
        );
        assert!(stats.complete > 0);
    }
}
