//! Spin-wait helpers that cooperate with the fair scheduler.

use lineup_sched::yield_point;

/// Spins until `cond` returns `true`, yielding to the fair scheduler
/// between probes.
///
/// Under the model, each yield deschedules the spinner in favour of other
/// enabled threads; if the condition can never become true, the fair
/// scheduler declares a livelock and the run becomes a stuck history — the
/// behaviour Line-Up's generalized linearizability inspects (§2.3).
/// Outside the model this falls back to [`std::thread::yield_now`].
///
/// # Example
///
/// ```
/// use lineup_sync::{spin, Atomic};
///
/// let flag = Atomic::new(true);
/// spin::spin_until(|| flag.load()); // already true: returns immediately
/// ```
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    while !cond() {
        if lineup_sched::is_model_active() {
            yield_point();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Spins at most `max_probes` times; returns whether the condition became
/// true. Components use this for bounded "spin then block" fast paths
/// (like .NET's `SpinWait` before a kernel wait).
pub fn spin_bounded(max_probes: usize, mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..max_probes {
        if cond() {
            return true;
        }
        if lineup_sched::is_model_active() {
            yield_point();
        } else {
            std::thread::yield_now();
        }
    }
    cond()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Atomic;
    use lineup_sched::{explore, Config, RunOutcome};
    use std::ops::ControlFlow;
    use std::sync::Arc;

    #[test]
    fn unmodelled_spin_until_true() {
        let mut n = 0;
        spin_until(|| {
            n += 1;
            n >= 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn unmodelled_spin_bounded() {
        assert!(spin_bounded(5, || true));
        let mut n = 0;
        assert!(!spin_bounded(3, || {
            n += 1;
            false
        }));
    }

    /// A spinner waiting on a flag set by another thread always completes
    /// under the fair scheduler.
    #[test]
    fn model_spinner_completes_when_flag_is_set() {
        let stats = explore(
            &Config::exhaustive(),
            |ex| {
                let flag = Arc::new(Atomic::new(false));
                let f2 = Arc::clone(&flag);
                ex.spawn(move || spin_until(|| flag.load()));
                ex.spawn(move || f2.store(true));
            },
            |run| {
                assert_eq!(run.outcome, RunOutcome::Complete);
                ControlFlow::Continue(())
            },
        );
        assert_eq!(stats.complete, stats.runs);
    }

    /// A spinner whose flag is never set is a fair livelock.
    #[test]
    fn model_spinner_livelocks_without_setter() {
        let stats = explore(
            &Config::exhaustive(),
            |ex| {
                let flag = Arc::new(Atomic::new(false));
                ex.spawn(move || spin_until(|| flag.load()));
            },
            |_| ControlFlow::Continue(()),
        );
        assert_eq!(stats.livelock, stats.runs);
    }
}
