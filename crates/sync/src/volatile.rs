//! Volatile fields.

use lineup_sched::{
    log_access, register_object, schedule, schedule_access, AccessIntent, AccessKind, ObjId,
};

/// A volatile field: reads and writes are individually atomic and
/// synchronizing (they never constitute data races), but — unlike
/// [`Atomic`](crate::Atomic) — the type offers no read-modify-write
/// operations, mirroring C#'s `volatile` qualifier.
///
/// The paper observes (§5.6) that the .NET collections' "disciplined use
/// of volatile qualifiers and interlocked operations" made every detected
/// data race benign; modelling volatiles separately lets the comparison
/// checkers reproduce that observation.
///
/// # Example
///
/// ```
/// use lineup_sync::VolatileCell;
///
/// let flag = VolatileCell::new(false);
/// flag.write(true);
/// assert!(flag.read());
/// ```
#[derive(Debug)]
pub struct VolatileCell<T> {
    id: ObjId,
    value: std::sync::Mutex<T>,
}

impl<T: Copy> VolatileCell<T> {
    /// Creates a new volatile cell holding `value`.
    pub fn new(value: T) -> Self {
        VolatileCell {
            id: register_object(),
            value: std::sync::Mutex::new(value),
        }
    }

    /// A volatile read.
    pub fn read(&self) -> T {
        // Declared a read for partial-order reduction: reads commute.
        schedule_access(self.id, AccessIntent::Read);
        let v = *self.value.lock().unwrap();
        log_access(self.id, AccessKind::AtomicLoad);
        v
    }

    /// A volatile write.
    pub fn write(&self, value: T) {
        schedule(self.id);
        *self.value.lock().unwrap() = value;
        log_access(self.id, AccessKind::AtomicStore);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineup_sched::{explore, Config};
    use std::ops::ControlFlow;
    use std::sync::Arc;

    #[test]
    fn unmodelled_read_write() {
        let v = VolatileCell::new(10u8);
        assert_eq!(v.read(), 10);
        v.write(20);
        assert_eq!(v.read(), 20);
    }

    /// A reader concurrent with a writer observes both values across the
    /// exploration.
    #[test]
    fn model_observes_both_orders() {
        let seen = std::cell::RefCell::new(std::collections::BTreeSet::new());
        let slot: std::rc::Rc<std::cell::RefCell<Option<Arc<Atomic>>>> = Default::default();
        type Atomic = crate::Atomic<u8>;
        let slot2 = std::rc::Rc::clone(&slot);
        explore(
            &Config::exhaustive(),
            move |ex| {
                let v = Arc::new(VolatileCell::new(0u8));
                let observed = Arc::new(Atomic::new(0u8));
                *slot2.borrow_mut() = Some(Arc::clone(&observed));
                let v2 = Arc::clone(&v);
                let o2 = Arc::clone(&observed);
                ex.spawn(move || v2.write(1));
                ex.spawn(move || {
                    let seen = v.read();
                    o2.store(seen);
                });
            },
            |_| {
                // Outside the model, load() is an uninstrumented read.
                let o = slot.borrow().clone().unwrap();
                seen.borrow_mut().insert(o.load());
                ControlFlow::Continue(())
            },
        );
        let seen = seen.into_inner();
        assert!(seen.contains(&0) && seen.contains(&1));
    }
}
