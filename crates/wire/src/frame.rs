//! Varint primitives and the framed stream reader/writer.
//!
//! A frame is `varint(payload_len) ++ payload`; payloads are decoded by
//! [`crate::record`]. Varints are LEB128 over `u64` (signed values are
//! zigzag-folded first), so small ids, thread indexes, and timestamps
//! cost one or two bytes each.

use std::fmt;
use std::io::{self, Read, Write};

use crate::record::{decode_payload, encode_payload, Record, VERSION};

/// Upper bound on a single frame's payload, protecting the reader from
/// mis-framed or adversarial input that decodes into a huge length.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Everything that can go wrong while decoding a wire stream.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The stream ended in the middle of a frame (truncated input).
    Truncated,
    /// A frame's declared length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// A varint ran past 10 bytes (not a valid LEB128 `u64`).
    BadVarint,
    /// An unknown record tag.
    BadTag(u8),
    /// An unknown value tag inside a record.
    BadValueTag(u8),
    /// An unknown ADT-kind byte in an `ObjectRegister` record.
    BadKind(u8),
    /// The stream did not start with a `Hello` frame carrying the
    /// expected magic (garbage prefix, or not a lineup-wire stream).
    BadMagic,
    /// The stream's format version is newer than this decoder.
    BadVersion(u32),
    /// An operation name was not valid UTF-8.
    BadUtf8,
    /// A frame's payload was longer than the record it encodes.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Truncated => write!(f, "stream truncated inside a frame"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN} limit")
            }
            WireError::BadVarint => write!(f, "varint longer than 10 bytes"),
            WireError::BadTag(t) => write!(f, "unknown record tag {t}"),
            WireError::BadValueTag(t) => write!(f, "unknown value tag {t}"),
            WireError::BadKind(k) => write!(f, "unknown ADT kind byte {k}"),
            WireError::BadMagic => write!(f, "stream does not begin with a lineup-wire Hello"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadUtf8 => write!(f, "operation name is not valid UTF-8"),
            WireError::TrailingBytes => write!(f, "frame payload has trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Appends a LEB128-encoded `u64` to `out`.
pub fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-folds an `i64` so small magnitudes stay small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A byte cursor over one frame's payload; every read is bounds-checked
/// and a short read surfaces as [`WireError::Truncated`].
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::BadVarint)
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.varint()? as usize;
        let bytes = self.bytes(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }
}

/// Writes length-prefixed frames to any [`Write`], reusing one scratch
/// buffer so encoding a record allocates nothing in steady state.
///
/// The writer does not flush on its own; callers decide when buffered
/// bytes must reach the peer (e.g. once per recorded run).
#[derive(Debug)]
pub struct FrameWriter<W> {
    inner: W,
    scratch: Vec<u8>,
    prefix: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a writer. Wrap sockets and files in a
    /// [`BufWriter`](std::io::BufWriter) first: frames are small and the
    /// writer issues two `write_all` calls per record.
    pub fn new(inner: W) -> Self {
        FrameWriter {
            inner,
            scratch: Vec::with_capacity(256),
            prefix: Vec::with_capacity(10),
        }
    }

    /// Encodes `record` as one frame and writes it.
    pub fn write_record(&mut self, record: &Record<'_>) -> io::Result<()> {
        self.scratch.clear();
        encode_payload(record, &mut self.scratch);
        self.prefix.clear();
        put_varint(self.scratch.len() as u64, &mut self.prefix);
        self.inner.write_all(&self.prefix)?;
        self.inner.write_all(&self.scratch)
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reads length-prefixed frames from any [`Read`] and decodes them into
/// [`Record`]s borrowing the reader's internal frame buffer.
///
/// Wrap sockets in a [`BufReader`](std::io::BufReader): the reader
/// issues one small `read_exact` for the length prefix and one for the
/// payload.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::with_capacity(256),
        }
    }

    /// Reads the next record, or `Ok(None)` on a clean end of stream (EOF
    /// exactly at a frame boundary). EOF anywhere else is
    /// [`WireError::Truncated`].
    pub fn next_record(&mut self) -> Result<Option<Record<'_>>, WireError> {
        let len = match self.read_varint()? {
            Some(len) => len as usize,
            None => return Ok(None),
        };
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        self.buf.resize(len, 0);
        self.inner.read_exact(&mut self.buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        decode_payload(&self.buf).map(Some)
    }

    /// Reads the stream's opening frame, which must be a
    /// [`Record::Hello`] with the expected magic and a version this
    /// decoder understands; returns the version. Everything else —
    /// including a clean EOF — is rejected, so a garbage prefix never
    /// masquerades as an empty stream.
    pub fn expect_hello(&mut self) -> Result<u32, WireError> {
        match self.next_record() {
            Ok(Some(Record::Hello { version })) => {
                if version > VERSION {
                    Err(WireError::BadVersion(version))
                } else {
                    Ok(version)
                }
            }
            Ok(_) => Err(WireError::BadMagic),
            // The Hello frame is magic-checked during decode; any decode
            // error on the first frame means "not one of our streams".
            Err(WireError::Io(e)) => Err(WireError::Io(e)),
            Err(_) => Err(WireError::BadMagic),
        }
    }

    /// Reads one length varint byte-by-byte; `Ok(None)` when the stream
    /// ends before the first byte.
    fn read_varint(&mut self) -> Result<Option<u64>, WireError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let mut byte = [0u8; 1];
            match self.inner.read(&mut byte) {
                Ok(0) if shift == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(_) => {
                    v |= u64::from(byte[0] & 0x7f) << (7 * shift);
                    if byte[0] & 0x80 == 0 {
                        return Ok(Some(v));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // Retry the same varint byte.
                    return self.read_varint_resume(v, shift);
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Err(WireError::BadVarint)
    }

    /// Cold path: continue a varint after `ErrorKind::Interrupted`.
    fn read_varint_resume(&mut self, mut v: u64, mut shift: u32) -> Result<Option<u64>, WireError> {
        loop {
            if shift >= 10 {
                return Err(WireError::BadVarint);
            }
            let mut byte = [0u8; 1];
            match self.inner.read(&mut byte) {
                Ok(0) if shift == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(_) => {
                    v |= u64::from(byte[0] & 0x7f) << (7 * shift);
                    if byte[0] & 0x80 == 0 {
                        return Ok(Some(v));
                    }
                    shift += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }

    /// Returns the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(v, &mut buf);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint().unwrap(), v);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert!(zigzag(-1) < 256);
        assert!(zigzag(1) < 256);
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let mut c = Cursor::new(&[0x80]);
        assert!(matches!(c.varint(), Err(WireError::Truncated)));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0x80u8; 11];
        let mut c = Cursor::new(&buf);
        assert!(matches!(c.varint(), Err(WireError::BadVarint)));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = FrameReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut bytes = Vec::new();
        put_varint((MAX_FRAME_LEN + 1) as u64, &mut bytes);
        let mut r = FrameReader::new(&bytes[..]);
        assert!(matches!(r.next_record(), Err(WireError::FrameTooLarge(_))));
    }
}
