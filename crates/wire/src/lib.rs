//! **lineup-wire**: the compact binary event format that streams
//! call/return histories from instrumented applications into the online
//! monitoring service (`lineup-server`).
//!
//! A stream is a sequence of varint-length-prefixed *frames*, each
//! holding one [`Record`]:
//!
//! * [`Record::Hello`] — stream handshake (magic + format version), the
//!   first frame of every stream; anything else is rejected, which is
//!   what catches garbage or mis-framed input immediately.
//! * [`Record::ObjectRegister`] — announces a monitored object: its
//!   stream-unique id, the [`AdtKind`](lineup::AdtKind) it claims to
//!   implement (if any), and its thread count.
//! * [`Record::Call`] / [`Record::Return`] — one history event each,
//!   carrying object id, thread id, a monotonic timestamp, and the
//!   operation name/arguments (calls) or response value (returns).
//! * [`Record::ObjectEnd`] — closes an object's history (optionally as
//!   *stuck*, meaning its pending calls will never return).
//! * [`Record::Shutdown`] — asks the receiving service to drain and exit.
//!
//! Encoding is allocation-light (one reusable scratch buffer per
//! [`FrameWriter`]) and decoding is zero-copy where the format allows it:
//! [`FrameReader`] hands out records whose operation names borrow from
//! the reader's frame buffer, so the ingest hot path allocates only when
//! it decides to keep an event.
//!
//! # Example
//!
//! ```
//! use lineup::Value;
//! use lineup_wire::{FrameReader, FrameWriter, Record, VERSION};
//!
//! let mut bytes = Vec::new();
//! {
//!     let mut w = FrameWriter::new(&mut bytes);
//!     w.write_record(&Record::Hello { version: VERSION }).unwrap();
//!     w.write_record(&Record::Call {
//!         object: 7,
//!         thread: 0,
//!         ts: 42,
//!         name: "Enqueue",
//!         args: vec![Value::Int(10)],
//!     })
//!     .unwrap();
//! }
//! let mut r = FrameReader::new(&bytes[..]);
//! assert_eq!(r.expect_hello().unwrap(), VERSION);
//! match r.next_record().unwrap().unwrap() {
//!     Record::Call { name, .. } => assert_eq!(name, "Enqueue"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! assert!(r.next_record().unwrap().is_none());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frame;
pub mod record;
pub mod recorder;

pub use frame::{FrameReader, FrameWriter, WireError, MAX_FRAME_LEN};
pub use record::{decode_payload, encode_record, Record, MAGIC, VERSION};
pub use recorder::StreamRecorder;
