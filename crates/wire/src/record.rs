//! The record vocabulary and its payload codec.
//!
//! Payload layout (all integers varint unless noted):
//!
//! ```text
//! Hello          := 0x00 magic[4] version
//! ObjectRegister := 0x01 object kind:u8 threads      (kind 0 = none,
//!                   1 = queue, 2 = stack, 3 = set, 4 = pqueue)
//! Call           := 0x02 object thread ts name_len name[..] nargs value*
//! Return         := 0x03 object thread ts value
//! ObjectEnd      := 0x04 object stuck:u8
//! Shutdown       := 0x05
//! value          := 0x00                      unit
//!                 | 0x01 b:u8                 bool
//!                 | 0x02 zigzag(i)            int
//!                 | 0x03 len bytes[..]        str
//!                 | 0x04                      fail
//!                 | 0x05 n value*             seq
//!                 | 0x06                      opt none
//!                 | 0x07 value                opt some
//! ```

use lineup::{AdtKind, Value};

use crate::frame::{put_varint, unzigzag, zigzag, Cursor, WireError};

/// Magic bytes opening every stream (inside the `Hello` payload).
pub const MAGIC: [u8; 4] = *b"LWF1";

/// Current format version, carried in `Hello`.
pub const VERSION: u32 = 1;

/// One wire record. `Call` names borrow from the decode buffer
/// (zero-copy); argument and response [`Value`]s are owned, since they
/// are exactly what an ingesting monitor keeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record<'a> {
    /// Stream handshake: magic (checked during decode) plus version.
    Hello {
        /// Format version of the producer.
        version: u32,
    },
    /// Announces a monitored object before its first event.
    ObjectRegister {
        /// Stream-unique object id.
        object: u64,
        /// The ADT the object claims to implement; `None` streams the
        /// object's events for accounting only (no checking).
        kind: Option<AdtKind>,
        /// Number of client threads operating on the object.
        threads: u32,
    },
    /// A call event: `thread` invoked `name(args)` on `object` at `ts`.
    Call {
        /// Target object id.
        object: u64,
        /// Calling thread index (dense, `0..threads`).
        thread: u32,
        /// Monotonic timestamp, nanoseconds since stream start.
        ts: u64,
        /// Operation name (borrowed from the decode buffer).
        name: &'a str,
        /// Argument values.
        args: Vec<Value>,
    },
    /// A return event: `thread`'s open call on `object` returned `value`.
    Return {
        /// Target object id.
        object: u64,
        /// Returning thread index.
        thread: u32,
        /// Monotonic timestamp, nanoseconds since stream start.
        ts: u64,
        /// Response value.
        value: Value,
    },
    /// Closes an object's history.
    ObjectEnd {
        /// Target object id.
        object: u64,
        /// True when the producer asserts the object's pending calls can
        /// never return (a watchdog-detected deadlock): the monitor then
        /// checks the history as *stuck*.
        stuck: bool,
    },
    /// Asks the receiving service to stop accepting, drain, and exit.
    Shutdown,
}

const TAG_HELLO: u8 = 0x00;
const TAG_REGISTER: u8 = 0x01;
const TAG_CALL: u8 = 0x02;
const TAG_RETURN: u8 = 0x03;
const TAG_END: u8 = 0x04;
const TAG_SHUTDOWN: u8 = 0x05;

fn kind_byte(kind: Option<AdtKind>) -> u8 {
    match kind {
        None => 0,
        Some(AdtKind::Queue) => 1,
        Some(AdtKind::Stack) => 2,
        Some(AdtKind::Set) => 3,
        Some(AdtKind::PriorityQueue) => 4,
    }
}

fn byte_kind(b: u8) -> Result<Option<AdtKind>, WireError> {
    match b {
        0 => Ok(None),
        1 => Ok(Some(AdtKind::Queue)),
        2 => Ok(Some(AdtKind::Stack)),
        3 => Ok(Some(AdtKind::Set)),
        4 => Ok(Some(AdtKind::PriorityQueue)),
        other => Err(WireError::BadKind(other)),
    }
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(0x00),
        Value::Bool(b) => {
            out.push(0x01);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(0x02);
            put_varint(zigzag(*i), out);
        }
        Value::Str(s) => {
            out.push(0x03);
            put_str(s, out);
        }
        Value::Fail => out.push(0x04),
        Value::Seq(vs) => {
            out.push(0x05);
            put_varint(vs.len() as u64, out);
            for v in vs {
                put_value(v, out);
            }
        }
        Value::Opt(None) => out.push(0x06),
        Value::Opt(Some(v)) => {
            out.push(0x07);
            put_value(v, out);
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value, WireError> {
    match c.u8()? {
        0x00 => Ok(Value::Unit),
        0x01 => Ok(Value::Bool(c.u8()? != 0)),
        0x02 => Ok(Value::Int(unzigzag(c.varint()?))),
        0x03 => Ok(Value::Str(c.str()?.to_string())),
        0x04 => Ok(Value::Fail),
        0x05 => {
            let n = c.varint()? as usize;
            // Each element costs at least one byte; a length beyond the
            // remaining payload is a framing lie, not a big allocation.
            let mut vs = Vec::with_capacity(n.min(crate::MAX_FRAME_LEN));
            for _ in 0..n {
                vs.push(get_value(c)?);
            }
            Ok(Value::Seq(vs))
        }
        0x06 => Ok(Value::Opt(None)),
        0x07 => Ok(Value::some(get_value(c)?)),
        other => Err(WireError::BadValueTag(other)),
    }
}

/// Encodes `record`'s payload (no length prefix) onto `out`.
pub fn encode_payload(record: &Record<'_>, out: &mut Vec<u8>) {
    match record {
        Record::Hello { version } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&MAGIC);
            put_varint(u64::from(*version), out);
        }
        Record::ObjectRegister {
            object,
            kind,
            threads,
        } => {
            out.push(TAG_REGISTER);
            put_varint(*object, out);
            out.push(kind_byte(*kind));
            put_varint(u64::from(*threads), out);
        }
        Record::Call {
            object,
            thread,
            ts,
            name,
            args,
        } => {
            out.push(TAG_CALL);
            put_varint(*object, out);
            put_varint(u64::from(*thread), out);
            put_varint(*ts, out);
            put_str(name, out);
            put_varint(args.len() as u64, out);
            for a in args {
                put_value(a, out);
            }
        }
        Record::Return {
            object,
            thread,
            ts,
            value,
        } => {
            out.push(TAG_RETURN);
            put_varint(*object, out);
            put_varint(u64::from(*thread), out);
            put_varint(*ts, out);
            put_value(value, out);
        }
        Record::ObjectEnd { object, stuck } => {
            out.push(TAG_END);
            put_varint(*object, out);
            out.push(u8::from(*stuck));
        }
        Record::Shutdown => out.push(TAG_SHUTDOWN),
    }
}

/// Encodes `record` as one complete frame (length prefix + payload)
/// appended to `out`. Convenience for tests and one-shot writers; the
/// steady-state path is [`FrameWriter`](crate::FrameWriter).
pub fn encode_record(record: &Record<'_>, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(64);
    encode_payload(record, &mut payload);
    put_varint(payload.len() as u64, out);
    out.extend_from_slice(&payload);
}

/// Decodes one frame payload. The returned record borrows `buf`.
pub fn decode_payload(buf: &[u8]) -> Result<Record<'_>, WireError> {
    let mut c = Cursor::new(buf);
    let record = match c.u8()? {
        TAG_HELLO => {
            if c.bytes(4)? != MAGIC {
                return Err(WireError::BadMagic);
            }
            Record::Hello {
                version: c.varint()? as u32,
            }
        }
        TAG_REGISTER => Record::ObjectRegister {
            object: c.varint()?,
            kind: byte_kind(c.u8()?)?,
            threads: c.varint()? as u32,
        },
        TAG_CALL => {
            let object = c.varint()?;
            let thread = c.varint()? as u32;
            let ts = c.varint()?;
            let name = c.str()?;
            let nargs = c.varint()? as usize;
            let mut args = Vec::with_capacity(nargs.min(crate::MAX_FRAME_LEN));
            for _ in 0..nargs {
                args.push(get_value(&mut c)?);
            }
            Record::Call {
                object,
                thread,
                ts,
                name,
                args,
            }
        }
        TAG_RETURN => Record::Return {
            object: c.varint()?,
            thread: c.varint()? as u32,
            ts: c.varint()?,
            value: get_value(&mut c)?,
        },
        TAG_END => Record::ObjectEnd {
            object: c.varint()?,
            stuck: c.u8()? != 0,
        },
        TAG_SHUTDOWN => Record::Shutdown,
        other => return Err(WireError::BadTag(other)),
    };
    if !c.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameReader, FrameWriter};

    fn sample_records() -> Vec<Record<'static>> {
        vec![
            Record::Hello { version: VERSION },
            Record::ObjectRegister {
                object: 1,
                kind: Some(AdtKind::Queue),
                threads: 4,
            },
            Record::ObjectRegister {
                object: 2,
                kind: None,
                threads: 1,
            },
            Record::Call {
                object: 1,
                thread: 3,
                ts: 1_000_000,
                name: "Enqueue",
                args: vec![Value::Int(-7)],
            },
            Record::Return {
                object: 1,
                thread: 3,
                ts: 1_000_500,
                value: Value::some(Value::Seq(vec![Value::Bool(true), Value::Fail])),
            },
            Record::Call {
                object: 2,
                thread: 0,
                ts: 2,
                name: "ToString",
                args: vec![Value::Str("x\"y".into()), Value::Opt(None)],
            },
            Record::ObjectEnd {
                object: 1,
                stuck: true,
            },
            Record::Shutdown,
        ]
    }

    #[test]
    fn records_round_trip_through_a_stream() {
        let records = sample_records();
        let mut bytes = Vec::new();
        let mut w = FrameWriter::new(&mut bytes);
        for r in &records {
            w.write_record(r).unwrap();
        }
        drop(w);

        let mut r = FrameReader::new(&bytes[..]);
        let mut seen = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            seen.push(match rec {
                Record::Call {
                    object,
                    thread,
                    ts,
                    name,
                    args,
                } => format!("call {object} {thread} {ts} {name} {args:?}"),
                other => format!("{other:?}"),
            });
        }
        let expect: Vec<String> = records
            .iter()
            .map(|rec| match rec {
                Record::Call {
                    object,
                    thread,
                    ts,
                    name,
                    args,
                } => format!("call {object} {thread} {ts} {name} {args:?}"),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut bytes = Vec::new();
        for r in sample_records() {
            encode_record(&r, &mut bytes);
        }
        // Any strict prefix either yields fewer records cleanly (cut at a
        // frame boundary) or errors with Truncated — never panics, never
        // fabricates a record.
        for cut in 0..bytes.len() {
            let mut r = FrameReader::new(&bytes[..cut]);
            loop {
                match r.next_record() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(WireError::Truncated) => break,
                    Err(other) => panic!("prefix {cut}: unexpected error {other}"),
                }
            }
        }
    }

    #[test]
    fn garbage_prefix_is_rejected_by_hello_check() {
        let mut bytes = vec![0x9a, 0x11, 0xff, 0x03];
        let mut valid = Vec::new();
        encode_record(&Record::Hello { version: VERSION }, &mut valid);
        bytes.extend_from_slice(&valid);
        let mut r = FrameReader::new(&bytes[..]);
        assert!(r.expect_hello().is_err());
    }

    #[test]
    fn hello_with_wrong_magic_is_rejected() {
        let mut payload = vec![TAG_HELLO];
        payload.extend_from_slice(b"NOPE");
        put_varint(1, &mut payload);
        assert!(matches!(decode_payload(&payload), Err(WireError::BadMagic)));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Vec::new();
        encode_record(
            &Record::Hello {
                version: VERSION + 1,
            },
            &mut bytes,
        );
        let mut r = FrameReader::new(&bytes[..]);
        assert!(matches!(r.expect_hello(), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = Vec::new();
        encode_payload(&Record::Shutdown, &mut payload);
        payload.push(0x00);
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::TrailingBytes)
        ));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(
            decode_payload(&[0x7f]),
            Err(WireError::BadTag(0x7f))
        ));
        let mut payload = vec![TAG_REGISTER];
        put_varint(1, &mut payload);
        payload.push(9); // kind byte
        put_varint(1, &mut payload);
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::BadKind(9))
        ));
    }
}
