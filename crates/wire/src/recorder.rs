//! A thread-safe event recorder producers embed in instrumented code.
//!
//! [`StreamRecorder`] wraps a [`FrameWriter`] in a mutex and stamps every
//! event with a monotonic timestamp relative to stream start. Producers
//! that already serialize history updates (the stress runner records
//! under its history lock) pay one uncontended mutex acquisition per
//! event; everything else is an append to a buffered writer.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lineup::{AdtKind, Value};

use crate::frame::FrameWriter;
use crate::record::{Record, VERSION};

/// Streams wire records to any `Write + Send` sink.
///
/// Object ids are allocated with [`alloc_object`](Self::alloc_object) so
/// concurrent producers never collide; timestamps are nanoseconds since
/// the recorder was created.
pub struct StreamRecorder {
    inner: Mutex<FrameWriter<Box<dyn Write + Send>>>,
    start: Instant,
    next_object: AtomicU64,
    events: AtomicU64,
}

impl fmt::Debug for StreamRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamRecorder")
            .field("next_object", &self.next_object.load(Ordering::Relaxed))
            .field("events", &self.events.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl StreamRecorder {
    /// Wraps `sink` and writes the stream handshake.
    pub fn to_writer(sink: Box<dyn Write + Send>) -> io::Result<Self> {
        let mut writer = FrameWriter::new(sink);
        writer
            .write_record(&Record::Hello { version: VERSION })
            .map_err(io::Error::other)?;
        Ok(StreamRecorder {
            inner: Mutex::new(writer),
            start: Instant::now(),
            next_object: AtomicU64::new(1),
            events: AtomicU64::new(0),
        })
    }

    /// Creates (truncating) `path` and records into it through a buffer.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Self::to_writer(Box::new(BufWriter::with_capacity(1 << 16, file)))
    }

    /// Allocates a fresh stream-unique object id.
    pub fn alloc_object(&self) -> u64 {
        self.next_object.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of call/return events recorded so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    fn ts(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn write(&self, record: &Record<'_>) -> io::Result<()> {
        let mut writer = self.inner.lock().unwrap();
        writer.write_record(record).map_err(io::Error::other)
    }

    /// Announces `object` (see [`Record::ObjectRegister`]).
    pub fn register(&self, object: u64, kind: Option<AdtKind>, threads: u32) -> io::Result<()> {
        self.write(&Record::ObjectRegister {
            object,
            kind,
            threads,
        })
    }

    /// Records a call event.
    pub fn call(&self, object: u64, thread: u32, name: &str, args: &[Value]) -> io::Result<()> {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.write(&Record::Call {
            object,
            thread,
            ts: self.ts(),
            name,
            args: args.to_vec(),
        })
    }

    /// Records a return event.
    pub fn ret(&self, object: u64, thread: u32, value: &Value) -> io::Result<()> {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.write(&Record::Return {
            object,
            thread,
            ts: self.ts(),
            value: value.clone(),
        })
    }

    /// Closes `object`'s history; `stuck` marks its pending calls as
    /// permanently blocked (watchdog-detected deadlock).
    pub fn end(&self, object: u64, stuck: bool) -> io::Result<()> {
        self.write(&Record::ObjectEnd { object, stuck })
    }

    /// Sends a [`Record::Shutdown`] and flushes.
    pub fn shutdown(&self) -> io::Result<()> {
        let mut writer = self.inner.lock().unwrap();
        writer
            .write_record(&Record::Shutdown)
            .map_err(io::Error::other)?;
        writer.flush()
    }

    /// Flushes buffered frames to the sink.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().unwrap().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameReader;
    use std::sync::Arc;

    /// A `Write` that appends into a shared buffer, so tests can inspect
    /// what the recorder produced.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn recorder_emits_a_valid_stream() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let rec = StreamRecorder::to_writer(Box::new(SharedBuf(buf.clone()))).unwrap();
        let obj = rec.alloc_object();
        rec.register(obj, Some(AdtKind::Stack), 2).unwrap();
        rec.call(obj, 0, "Push", &[Value::Int(5)]).unwrap();
        rec.ret(obj, 0, &Value::Unit).unwrap();
        rec.end(obj, false).unwrap();
        rec.shutdown().unwrap();
        assert_eq!(rec.events(), 2);

        let bytes = buf.lock().unwrap().clone();
        let mut r = FrameReader::new(&bytes[..]);
        assert_eq!(r.expect_hello().unwrap(), VERSION);
        let mut tags = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            tags.push(match rec {
                Record::Hello { .. } => "hello",
                Record::ObjectRegister { .. } => "register",
                Record::Call { .. } => "call",
                Record::Return { .. } => "return",
                Record::ObjectEnd { .. } => "end",
                Record::Shutdown => "shutdown",
            });
        }
        assert_eq!(tags, ["register", "call", "return", "end", "shutdown"]);
    }

    #[test]
    fn object_ids_are_unique_across_threads() {
        let rec = Arc::new(StreamRecorder::to_writer(Box::new(io::sink())).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || (0..100).map(|_| rec.alloc_object()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
