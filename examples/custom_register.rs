//! Walk-through: testing *your own* concurrent component with Line-Up.
//!
//! ```text
//! cargo run --release -p lineup-bench --example custom_register
//! ```
//!
//! The component here is a "bounded register" supporting `write(x)`,
//! `read()`, and `cas(old→new)` — implemented twice: correctly with an
//! interlocked cell, and sloppily with a check-then-act race. Three steps
//! make a component checkable:
//!
//! 1. implement it against the `lineup-sync` primitives (so the model
//!    checker controls every interleaving point);
//! 2. implement [`TestInstance`] (dispatch invocations to methods) and
//!    [`TestTarget`] (create fresh instances, list the invocations worth
//!    testing);
//! 3. call [`lineup::check`] / [`lineup::random_check`].

use lineup::{
    auto_check, check, random_check, AutoCheckLimits, CheckOptions, Invocation, RandomCheckConfig,
    TestInstance, TestMatrix, TestTarget, Value,
};
use lineup_sync::Atomic;

/// A register with an atomic compare-and-swap — correct.
struct AtomicRegister {
    cell: Atomic<i64>,
}

/// The same API with a check-then-act `cas` — buggy.
struct RacyRegister {
    cell: Atomic<i64>,
}

impl TestInstance for AtomicRegister {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (inv.name.as_str(), inv.args.as_slice()) {
            ("write", [Value::Int(x)]) => {
                self.cell.store(*x);
                Value::Unit
            }
            ("read", _) => Value::Int(self.cell.load()),
            ("cas", [Value::Int(old), Value::Int(new)]) => {
                Value::Bool(self.cell.compare_exchange(*old, *new).is_ok())
            }
            other => panic!("unknown operation {other:?}"),
        }
    }
}

impl TestInstance for RacyRegister {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (inv.name.as_str(), inv.args.as_slice()) {
            ("write", [Value::Int(x)]) => {
                self.cell.store(*x);
                Value::Unit
            }
            ("read", _) => Value::Int(self.cell.load()),
            ("cas", [Value::Int(old), Value::Int(new)]) => {
                // Check-then-act: not atomic. A concurrent write can slip
                // between the load and the store, and this "cas" both
                // reports success and clobbers the other write.
                if self.cell.load() == *old {
                    self.cell.store(*new);
                    Value::Bool(true)
                } else {
                    Value::Bool(false)
                }
            }
            other => panic!("unknown operation {other:?}"),
        }
    }
}

struct RegisterTarget {
    racy: bool,
}

impl TestTarget for RegisterTarget {
    type Instance = Box<dyn TestInstance>;

    fn name(&self) -> &str {
        if self.racy {
            "RacyRegister"
        } else {
            "AtomicRegister"
        }
    }

    fn create(&self) -> Box<dyn TestInstance> {
        if self.racy {
            Box::new(RacyRegister {
                cell: Atomic::new(0),
            })
        } else {
            Box::new(AtomicRegister {
                cell: Atomic::new(0),
            })
        }
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![
            Invocation::with_int("write", 1),
            Invocation::with_int("write", 2),
            Invocation::new("read"),
            Invocation::with_args("cas", [Value::Int(0), Value::Int(7)]),
        ]
    }
}

fn main() {
    // A targeted test: cas(0→7) racing a write(1), observed by a read.
    let matrix = TestMatrix::from_columns(vec![
        vec![Invocation::with_args("cas", [Value::Int(0), Value::Int(7)])],
        vec![Invocation::with_int("write", 1)],
    ])
    .with_finally(vec![Invocation::new("read")]);
    println!("Test matrix (with a final observation):\n{matrix}");

    let good = RegisterTarget { racy: false };
    let report = check(&good, &matrix, &CheckOptions::new());
    println!(
        "AtomicRegister: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(report.passed());

    let bad = RegisterTarget { racy: true };
    let report = check(&bad, &matrix, &CheckOptions::new());
    println!(
        "RacyRegister:   {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(!report.passed());
    print!(
        "\n{}",
        lineup::render_violation(report.first_violation().unwrap())
    );

    // Fully automatic: RandomCheck samples tests from the catalog until
    // the bug falls out (Fig. 8) — no test matrix specified at all.
    println!("\nRandomCheck (no test specified at all):");
    let cfg = RandomCheckConfig {
        rows: 2,
        cols: 2,
        samples: 200,
        seed: 3,
        stop_at_first_failure: true,
        ..RandomCheckConfig::paper_defaults(3)
    };
    let result = random_check(&bad, &cfg);
    match result.first_failure {
        Some(report) => println!(
            "  found a failing test automatically after {} samples:\n{}",
            result.summaries.len(),
            report.matrix
        ),
        None => println!("  all samples passed (increase the sample size)"),
    }

    // AutoCheck (Fig. 6) exhaustively enumerates small tests; with the
    // catalog's first two invocations only (write/write), this register
    // has no observable bug, illustrating Theorem 6's caveat: soundness
    // holds only in the limit over all tests.
    let small = auto_check(&bad, &AutoCheckLimits::default());
    assert!(
        small.is_ok(),
        "2x2 write-only tests cannot expose the cas bug"
    );
}
