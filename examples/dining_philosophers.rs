//! Deadlock detection through stuck histories: dining philosophers.
//!
//! ```text
//! cargo run --release -p lineup-bench --example dining_philosophers
//! ```
//!
//! The component is a table of forks with one operation, `dine(i)`: pick
//! up two forks, eat, put them down. Serially `dine` always completes, so
//! the synthesized specification contains no stuck histories — which
//! means *any* concurrent deadlock is a violation of deterministic
//! linearizability (Definition 2: a pending operation with no serial
//! justification for blocking). Line-Up thus doubles as a deadlock
//! detector with an oracle: blocking is only tolerated where the
//! component's own sequential semantics block.
//!
//! The naive table (every philosopher grabs the left fork first)
//! deadlocks; the ordered table (forks acquired in global order) passes.

use lineup::{
    check, CheckOptions, Invocation, TestInstance, TestMatrix, TestTarget, Value, Violation,
};
use lineup_sync::Mutex;

const SEATS: usize = 2;

struct Table {
    forks: Vec<Mutex>,
    /// Acquire forks in global index order (the classic fix)?
    ordered: bool,
}

impl Table {
    fn dine(&self, seat: usize) {
        let left = seat;
        let right = (seat + 1) % SEATS;
        let (first, second) = if self.ordered && left > right {
            (right, left)
        } else {
            (left, right)
        };
        self.forks[first].acquire();
        self.forks[second].acquire();
        // Eat.
        self.forks[second].release();
        self.forks[first].release();
    }
}

impl TestInstance for Table {
    fn invoke(&self, inv: &Invocation) -> Value {
        match (inv.name.as_str(), inv.args.as_slice()) {
            ("dine", [Value::Int(seat)]) => {
                self.dine(*seat as usize % SEATS);
                Value::Unit
            }
            other => panic!("unknown operation {other:?}"),
        }
    }
}

struct TableTarget {
    ordered: bool,
}

impl TestTarget for TableTarget {
    type Instance = Table;

    fn name(&self) -> &str {
        if self.ordered {
            "OrderedForksTable"
        } else {
            "NaiveForksTable"
        }
    }

    fn create(&self) -> Table {
        Table {
            forks: (0..SEATS).map(|_| Mutex::new()).collect(),
            ordered: self.ordered,
        }
    }

    fn invocations(&self) -> Vec<Invocation> {
        (0..SEATS as i64)
            .map(|s| Invocation::with_int("dine", s))
            .collect()
    }
}

fn main() {
    // Each philosopher dines once, concurrently.
    let m = TestMatrix::from_columns(
        (0..SEATS as i64)
            .map(|s| vec![Invocation::with_int("dine", s)])
            .collect(),
    );
    println!("Two philosophers, two forks:\n{m}");

    let naive = TableTarget { ordered: false };
    let report = check(&naive, &m, &CheckOptions::new());
    println!(
        "NaiveForksTable:   {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(!report.passed(), "the naive table deadlocks");
    match report.first_violation().unwrap() {
        Violation::StuckNoWitness {
            history, pending, ..
        } => {
            println!(
                "  deadlock found: {} by {} blocked with no serial justification",
                history.ops[*pending].invocation,
                lineup::History::thread_label(history.ops[*pending].thread)
            );
            assert!(history.stuck);
        }
        other => panic!("expected a stuck violation, got {other:?}"),
    }

    let ordered = TableTarget { ordered: true };
    let report = check(&ordered, &m, &CheckOptions::new());
    println!(
        "OrderedForksTable: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    assert!(report.passed(), "{:?}", report.violations);
    println!(
        "\nSerial dine() never blocks, so the specification contains no stuck\n\
         histories — any concurrent deadlock is conclusively a bug (Def. 2)."
    );
}
