//! End-to-end reproduction of the paper's flagship example (Fig. 1): a
//! black-box test of a concurrent FIFO queue finds the CTP bug where
//! `TryTake` fails on a non-empty queue because a lock acquire was
//! accidentally allowed to time out.
//!
//! ```text
//! cargo run --release -p lineup-bench --example find_queue_bug
//! ```

use lineup::report::render_violation;
use lineup::{check, random_check, CheckOptions, Invocation, RandomCheckConfig, TestMatrix};
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::Variant;

fn main() {
    let pre = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };

    // As in §1.1, the user only specifies a set of method calls worth
    // testing; here we even let RandomCheck pick the matrices.
    println!("Hunting with RandomCheck (random 2x2 tests over the queue API)...");
    let cfg = RandomCheckConfig {
        rows: 2,
        cols: 2,
        samples: 50,
        seed: 1,
        stop_at_first_failure: true,
        invocations: Some(vec![
            Invocation::with_int("Add", 200),
            Invocation::with_int("Add", 400),
            Invocation::new("TryTake"),
        ]),
        ..RandomCheckConfig::paper_defaults(1)
    };
    let result = random_check(&pre, &cfg);
    let failure = result.first_failure.expect("the CTP queue bug is found");
    println!(
        "Found a failing test after {} random tests:\n{}",
        result.summaries.len(),
        failure.matrix
    );
    print!("{}", render_violation(failure.first_violation().unwrap()));

    // Shrink it to a minimal failing test for the bug report (§5.1).
    let (minimal, _) = lineup::shrink_failing_test(&pre, &failure.matrix, &CheckOptions::new());
    println!("\nMinimal failing test:\n{minimal}");

    // Regression check: the fixed queue passes the same test.
    let fixed = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };
    let report = check(&fixed, &minimal, &CheckOptions::new());
    assert!(report.passed());
    println!("The fixed queue passes the minimal test. Bug confirmed fixed.");

    // The exact Fig. 1 scenario also reproduces directly.
    let fig1 = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Add", 200),
            Invocation::with_int("Add", 400),
        ],
        vec![Invocation::new("TryTake"), Invocation::new("TryTake")],
    ]);
    assert!(!check(&pre, &fig1, &CheckOptions::new()).passed());
    println!("Fig. 1's exact matrix reproduces the violation as well.");
}
