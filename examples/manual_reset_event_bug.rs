//! End-to-end reproduction of the paper's Fig. 9: the ManualResetEvent
//! lost-wakeup bug (root cause A), a liveness error only the *generalized*
//! linearizability of §2.3 can catch.
//!
//! ```text
//! cargo run --release -p lineup-bench --example manual_reset_event_bug
//! ```

use lineup::report::render_violation;
use lineup::{check, CheckOptions, Violation};
use lineup_collections::manual_reset_event::{fig9_matrix, ManualResetEventTarget};
use lineup_collections::Variant;

fn main() {
    let matrix = fig9_matrix();
    println!("Fig. 9 test — Thread 1: Wait()   Thread 2: Set(); Reset(); Set()\n{matrix}");

    let pre = ManualResetEventTarget {
        variant: Variant::Pre,
    };
    let report = check(&pre, &matrix, &CheckOptions::new());
    assert!(!report.passed(), "the CAS-re-read bug is found");
    let violation = report.first_violation().unwrap();
    print!("{}", render_violation(violation));

    // The violation is a *stuck* history: Wait never returns, although
    // serially a Wait after the final Set always would. This is exactly
    // why the paper extends linearizability to blocking behaviors: "we
    // would not be able to single out the bug in Figure 9 with a tool
    // that checks standard (nonblocking) linearizability only" (§5.5).
    match violation {
        Violation::StuckNoWitness {
            history, pending, ..
        } => {
            println!(
                "\nThe pending operation is {} by thread {} — never unblocked, with\n\
                 no serial justification for blocking there.",
                history.ops[*pending].invocation,
                lineup::History::thread_label(history.ops[*pending].thread)
            );
        }
        other => panic!("expected a stuck-history violation, got {other:?}"),
    }

    // The registration CAS computed its new value from a re-read of the
    // shared state; the fixed version computes it from the local copy and
    // passes.
    let fixed = ManualResetEventTarget {
        variant: Variant::Fixed,
    };
    assert!(check(&fixed, &matrix, &CheckOptions::new()).passed());
    println!("\nThe fixed ManualResetEvent passes the same test.");
}
