//! Quickstart: check a correct and a buggy counter with Line-Up.
//!
//! ```text
//! cargo run --release -p lineup-bench --example quickstart
//! ```
//!
//! Line-Up needs nothing but a list of invocations to exercise: it
//! synthesizes the sequential specification from the component's own
//! serial behavior (phase 1) and then model-checks every concurrent
//! interleaving against it (phase 2). Any violation proves the component
//! is not linearizable with respect to *any* deterministic sequential
//! specification.

use lineup::doc_support::{BuggyCounterTarget, CounterTarget};
use lineup::report::render_report;
use lineup::{check, CheckOptions, Invocation, TestMatrix};

fn main() {
    // 1. Pick the operations to test (the only manual step, §1.1).
    let matrix = TestMatrix::from_columns(vec![
        vec![Invocation::new("inc"), Invocation::new("get")],
        vec![Invocation::new("inc")],
    ]);
    println!("Test matrix:\n{matrix}");

    // 2. Check the correct counter: every concurrent history has a serial
    //    witness among the serial behaviors.
    let report = check(&CounterTarget, &matrix, &CheckOptions::new());
    println!("== Correct counter ==");
    print!("{}", render_report(&report));
    assert!(report.passed());

    // 3. Check the buggy counter (non-atomic `count = count + 1`): some
    //    interleaving loses an increment and the observed get() value is
    //    impossible under every serialization (§2.2.1).
    let report = check(&BuggyCounterTarget, &matrix, &CheckOptions::new());
    println!("\n== Buggy counter (§2.2.1) ==");
    print!("{}", render_report(&report));
    assert!(!report.passed());

    println!(
        "\nNext steps: see examples/custom_register.rs for testing your own\n\
         component, and `cargo run -p lineup-bench --bin table2` for the full\n\
         evaluation reproduction."
    );
}
