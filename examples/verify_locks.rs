//! Verifying mutual-exclusion primitives with Line-Up.
//!
//! ```text
//! cargo run --release -p lineup-bench --example verify_locks
//! ```
//!
//! Line-Up checks *components*; a lock becomes a checkable component by
//! wrapping it around a counter whose increment is a plain read-modify-
//! write: if the lock provides mutual exclusion, the counter behaves like
//! the sequential one and every concurrent history has a serial witness.
//! If it does not, some schedule loses an update and the observed value
//! matches no serialization.
//!
//! Three locks are checked: a ticket lock (correct), Peterson's algorithm
//! (correct under sequential consistency, which the model provides), and
//! a broken Peterson variant that skips the turn handoff.

use lineup::{check, CheckOptions, Invocation, TestInstance, TestMatrix, TestTarget, Value};
use lineup_sync::{spin, Atomic, DataCell, VolatileCell};

/// A classic ticket lock: FIFO by ticket number.
struct TicketLock {
    next_ticket: Atomic<i64>,
    now_serving: Atomic<i64>,
}

impl TicketLock {
    fn new() -> Self {
        TicketLock {
            next_ticket: Atomic::new(0),
            now_serving: Atomic::new(0),
        }
    }

    fn acquire(&self) {
        let my_ticket = self.next_ticket.fetch_add(1);
        spin::spin_until(|| self.now_serving.load() == my_ticket);
    }

    fn release(&self) {
        self.now_serving.fetch_add(1);
    }
}

/// Peterson's two-thread mutual exclusion. Correct under sequential
/// consistency — which the model scheduler guarantees, making this a
/// faithful check of the *algorithm* (on real hardware it additionally
/// needs fences).
struct PetersonLock {
    flag: [VolatileCell<bool>; 2],
    turn: VolatileCell<usize>,
    /// When false, skip the turn handoff — the classic broken variant.
    handoff: bool,
}

impl PetersonLock {
    fn new(handoff: bool) -> Self {
        PetersonLock {
            flag: [VolatileCell::new(false), VolatileCell::new(false)],
            turn: VolatileCell::new(0),
            handoff,
        }
    }

    fn me(&self) -> usize {
        lineup_sched::current_thread().index() % 2
    }

    fn acquire(&self) {
        let me = self.me();
        let other = 1 - me;
        self.flag[me].write(true);
        if self.handoff {
            self.turn.write(other);
            spin::spin_until(|| !self.flag[other].read() || self.turn.read() == me);
        } else {
            // Broken: without giving away the turn, two acquirers can both
            // pass the gate.
            spin::spin_until(|| !self.flag[other].read() || self.turn.read() == me);
        }
    }

    fn release(&self) {
        self.flag[self.me()].write(false);
    }
}

/// The component under test: a counter protected by one of the locks.
enum AnyLock {
    Ticket(TicketLock),
    Peterson(PetersonLock),
}

impl AnyLock {
    fn acquire(&self) {
        match self {
            AnyLock::Ticket(l) => l.acquire(),
            AnyLock::Peterson(l) => l.acquire(),
        }
    }
    fn release(&self) {
        match self {
            AnyLock::Ticket(l) => l.release(),
            AnyLock::Peterson(l) => l.release(),
        }
    }
}

struct LockedCounter {
    lock: AnyLock,
    count: DataCell<i64>,
}

impl TestInstance for LockedCounter {
    fn invoke(&self, inv: &Invocation) -> Value {
        match inv.name.as_str() {
            "incr" => {
                self.lock.acquire();
                let v = self.count.get();
                self.count.set(v + 1);
                self.lock.release();
                Value::Unit
            }
            "get" => {
                self.lock.acquire();
                let v = self.count.get();
                self.lock.release();
                Value::Int(v)
            }
            other => panic!("unknown operation {other}"),
        }
    }
}

#[derive(Clone, Copy)]
enum LockKind {
    Ticket,
    Peterson,
    BrokenPeterson,
}

struct LockTarget {
    kind: LockKind,
}

impl TestTarget for LockTarget {
    type Instance = LockedCounter;

    fn name(&self) -> &str {
        match self.kind {
            LockKind::Ticket => "TicketLock",
            LockKind::Peterson => "PetersonLock",
            LockKind::BrokenPeterson => "BrokenPetersonLock",
        }
    }

    fn create(&self) -> LockedCounter {
        let lock = match self.kind {
            LockKind::Ticket => AnyLock::Ticket(TicketLock::new()),
            LockKind::Peterson => AnyLock::Peterson(PetersonLock::new(true)),
            LockKind::BrokenPeterson => AnyLock::Peterson(PetersonLock::new(false)),
        };
        LockedCounter {
            lock,
            count: DataCell::new(0),
        }
    }

    fn invocations(&self) -> Vec<Invocation> {
        vec![Invocation::new("incr"), Invocation::new("get")]
    }
}

fn main() {
    // Two threads, each incrementing then reading: mutual exclusion makes
    // this deterministically linearizable; a broken lock loses updates.
    let m = TestMatrix::from_columns(vec![
        vec![Invocation::new("incr")],
        vec![Invocation::new("incr")],
    ])
    .with_finally(vec![Invocation::new("get")]);
    println!("Checking mutual exclusion via Line-Up on:\n{m}");

    for kind in [
        LockKind::Ticket,
        LockKind::Peterson,
        LockKind::BrokenPeterson,
    ] {
        let target = LockTarget { kind };
        let report = check(&target, &m, &CheckOptions::new());
        println!(
            "{:<22} {}  (phase 2: {} runs)",
            target.name(),
            if report.passed() { "PASS" } else { "FAIL" },
            report.phase2.runs
        );
        match kind {
            LockKind::BrokenPeterson => {
                assert!(!report.passed(), "the broken lock must be caught");
                if let Some(v) = report.first_violation() {
                    print!("\n{}", lineup::render_violation(v));
                }
            }
            _ => assert!(report.passed(), "{:?}", report.violations),
        }
    }
    println!(
        "\nNote: Peterson's algorithm passes because the model scheduler is\n\
         sequentially consistent; on weak hardware the algorithm additionally\n\
         needs fences — the memory-model caveat of the paper's §5.7."
    );
}
