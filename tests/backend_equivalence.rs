//! The fiber execution backend is unobservable (ISSUE acceptance): a
//! handoff under [`Backend::Fibers`] is a direct userspace stack switch
//! instead of a park/unpark pair of OS threads, but the schedule point —
//! the decision, the recording, the POR bookkeeping — executes unchanged.
//! Checking any class under fibers must therefore be *byte-identical* to
//! checking it under [`Backend::OsThreads`]: same verdicts, same violation
//! list in the same order with the same reproducing decisions, same
//! distinct-history counts, same run, step, handoff, and fast-path
//! counters — with POR on or off and under parallel exploration.
//!
//! On targets without fiber support `Backend::Fibers` degrades to OS
//! threads and the comparisons hold trivially.

use lineup::{replay_matrix, Backend, CheckOptions, TestMatrix, Violation};
use lineup_collections::registry::{all_classes, ClassEntry};

/// Renders the full violation list, decisions included: the backend must
/// not change the exploration order, so no sorting or deduplication.
fn rendered(violations: &[Violation]) -> Vec<String> {
    violations.iter().map(|v| format!("{v:?}")).collect()
}

/// A small matrix exercising `entry`: its own regression matrix when it
/// has one, else the seeded sibling's (same component, same methods),
/// else a minimal two-column test from the target's catalog.
fn matrix_for(entry: &ClassEntry, all: &[ClassEntry]) -> TestMatrix {
    if entry.name == "ConcurrentBag" {
        // The bag's `TryTake` scans every per-thread list; keep the
        // POR-off baseline finite by comparing on concurrent `Add`s.
        return TestMatrix::from_columns(vec![
            vec![lineup::Invocation::with_int("Add", 10)],
            vec![lineup::Invocation::with_int("Add", 20)],
        ]);
    }
    if let Some(m) = entry.regression_matrix() {
        return m;
    }
    let pre = format!("{} (Pre)", entry.name);
    if let Some(m) = all
        .iter()
        .find(|e| e.name == pre)
        .and_then(|e| e.regression_matrix())
    {
        return m;
    }
    let invs = entry.target().invocations();
    let a = invs[0].clone();
    let b = invs.get(1).cloned().unwrap_or_else(|| invs[0].clone());
    TestMatrix::from_columns(vec![vec![a.clone(), b.clone()], vec![b, a]])
}

/// Shrinks a matrix so the exhaustive exploration stays feasible in a
/// debug-build test: at most two columns of at most two operations.
fn small(mut m: TestMatrix) -> TestMatrix {
    m.columns.truncate(2);
    if let Some(c) = m.columns.first_mut() {
        c.truncate(2);
    }
    if let Some(c) = m.columns.get_mut(1) {
        c.truncate(1);
    }
    m.finally.truncate(1);
    m
}

fn exhaustive(por: bool, backend: Backend) -> CheckOptions {
    CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .with_backend(backend)
        .collect_all_violations()
}

/// Asserts the byte-identity contract between a fiber-backed and an
/// OS-thread-backed report of the same check. Unlike the fast-path
/// equivalence suite, *every* counter must match — the fiber backend
/// changes how a handoff is performed, never whether one happens.
fn assert_identical(name: &str, fib: &lineup::CheckReport, os: &lineup::CheckReport) {
    assert_eq!(
        fib.passed(),
        os.passed(),
        "{name}: verdict must not depend on the backend"
    );
    assert_eq!(
        rendered(&fib.violations),
        rendered(&os.violations),
        "{name}: violation lists (order and decisions included) must be byte-identical"
    );
    assert_eq!(
        fib.phase2.full_histories, os.phase2.full_histories,
        "{name}: distinct full histories must match"
    );
    assert_eq!(
        fib.phase2.stuck_histories, os.phase2.stuck_histories,
        "{name}: distinct stuck histories must match"
    );
    assert_eq!(
        fib.phase2.runs, os.phase2.runs,
        "{name}: run counts must match"
    );
    assert_eq!(
        fib.phase2.sleep_prunes, os.phase2.sleep_prunes,
        "{name}: sleep-set prunes must match"
    );
    assert_eq!(
        fib.phase2.total_steps, os.phase2.total_steps,
        "{name}: step counts must match"
    );
    assert_eq!(
        fib.phase2.handoffs, os.phase2.handoffs,
        "{name}: a fiber handoff is counted exactly like an OS one"
    );
    assert_eq!(
        fib.phase2.fast_path_steps, os.phase2.fast_path_steps,
        "{name}: the same-thread fast path fires at the same points"
    );
}

#[test]
fn fiber_backend_is_byte_identical_on_every_class() {
    let all = all_classes();
    for entry in &all {
        let matrix = small(matrix_for(entry, &all));
        eprintln!("checking {} (fibers)...", entry.name);
        let fib = entry
            .target()
            .check(&matrix, &exhaustive(false, Backend::Fibers));
        eprintln!(
            "  runs={} handoffs={} fast={}",
            fib.phase2.runs, fib.phase2.handoffs, fib.phase2.fast_path_steps
        );
        let os = entry
            .target()
            .check(&matrix, &exhaustive(false, Backend::OsThreads));
        assert_identical(entry.name, &fib, &os);
    }
}

#[test]
fn backend_equivalence_holds_under_por() {
    // POR settles footprints and consults sleep sets at every schedule
    // point; the fiber switch must leave all of that in place.
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        let fib = entry
            .target()
            .check(&matrix, &exhaustive(true, Backend::Fibers));
        let os = entry
            .target()
            .check(&matrix, &exhaustive(true, Backend::OsThreads));
        assert_identical(entry.name, &fib, &os);
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn backend_equivalence_holds_under_two_workers() {
    // Each parallel worker owns a fiber pool; the work-stealing pool's
    // subtree handoffs must behave the same on either backend. POR stays
    // off here: with it on, steal-timing decides which sleep-set nodes get
    // promoted, so run counts are not comparable across two executions —
    // POR-off work stealing partitions the tree exactly, making every
    // counter deterministic.
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        // Probe disabled so the stealing machinery is exercised even on
        // matrices below the auto-serial threshold.
        let fib = entry.target().check(
            &matrix,
            &exhaustive(false, Backend::Fibers)
                .with_workers(2)
                .with_parallel_probe_runs(0),
        );
        let os = entry.target().check(
            &matrix,
            &exhaustive(false, Backend::OsThreads)
                .with_workers(2)
                .with_parallel_probe_runs(0),
        );
        assert_identical(entry.name, &fib, &os);
        assert_eq!(
            fib.phase2.frontier_replays, 0,
            "{}: no eager prefix re-execution under work stealing",
            entry.name
        );
        assert_eq!(os.phase2.frontier_replays, 0);
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn violations_recorded_on_one_backend_replay_on_the_other() {
    // The recorded decision indexes refer to schedule points, which both
    // backends visit identically — so a schedule recorded under fibers
    // replays under OS threads and vice versa.
    use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
    use lineup_collections::registry::Variant;

    let target = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let all = all_classes();
    let entry = all
        .iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry has the seeded queue");
    let matrix = entry.regression_matrix().expect("regression matrix");
    let opts = CheckOptions::new().with_preemption_bound(None);
    let fib = lineup::check(
        &target,
        &matrix,
        &opts.clone().with_backend(Backend::Fibers),
    );
    let os = lineup::check(
        &target,
        &matrix,
        &opts.clone().with_backend(Backend::OsThreads),
    );
    assert!(!fib.passed() && !os.passed(), "the seeded bug is found");
    let (
        Some(Violation::NoWitness { history, decisions }),
        Some(Violation::NoWitness {
            history: h2,
            decisions: d2,
        }),
    ) = (fib.first_violation(), os.first_violation())
    else {
        panic!("expected no-witness violations");
    };
    assert_eq!(history, h2, "same violating history either way");
    assert_eq!(decisions, d2, "same reproducing schedule either way");
    let run = replay_matrix(&target, &matrix, decisions.clone(), None);
    assert_eq!(
        &run.history, history,
        "replaying the recorded decisions reproduces the history"
    );
}
