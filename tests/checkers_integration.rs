//! Integration tests for the §5.6 comparison checkers against *real*
//! modelled executions (the unit tests in `lineup-checkers` use synthetic
//! logs; these drive the detectors end-to-end through the scheduler).

use std::ops::ControlFlow;
use std::sync::Arc;

use lineup_checkers::{check_serializability, detect_races};
use lineup_sched::{explore, Config};
use lineup_sync::{Atomic, DataCell, Mutex, VolatileCell};

fn explore_logged(
    setup: impl FnMut(&mut lineup_sched::Execution),
    mut visit: impl FnMut(&[lineup_sched::AccessEvent]),
) {
    let config = Config::preemption_bounded(2).with_access_log(true);
    explore(&config, setup, |run| {
        visit(&run.access_log);
        ControlFlow::Continue(())
    });
}

#[test]
fn unprotected_data_accesses_race() {
    let mut racy_runs = 0usize;
    explore_logged(
        |ex| {
            let c = Arc::new(DataCell::new(0u32));
            for _ in 0..2 {
                let c = Arc::clone(&c);
                ex.spawn(move || {
                    let v = c.get();
                    c.set(v + 1);
                });
            }
        },
        |log| {
            if !detect_races(log).is_empty() {
                racy_runs += 1;
            }
        },
    );
    assert!(racy_runs > 0, "the unlocked counter races in every overlap");
}

#[test]
fn lock_protected_accesses_never_race() {
    explore_logged(
        |ex| {
            let m = Arc::new(Mutex::new());
            let c = Arc::new(DataCell::new(0u32));
            for _ in 0..2 {
                let m = Arc::clone(&m);
                let c = Arc::clone(&c);
                ex.spawn(move || {
                    m.acquire();
                    let v = c.get();
                    c.set(v + 1);
                    m.release();
                });
            }
        },
        |log| {
            assert!(detect_races(log).is_empty(), "lock discipline is race-free");
        },
    );
}

#[test]
fn volatile_publication_is_race_free_but_atomic_rmw_is_not_serializable() {
    // The exact §5.6 situation: volatiles/interlocked leave no data races,
    // yet the same executions violate conflict serializability.
    let mut any_serializability_warning = false;
    explore_logged(
        |ex| {
            let flag = Arc::new(VolatileCell::new(false));
            let data = Arc::new(DataCell::new(0u32));
            let counter = Arc::new(Atomic::new(0u32));
            let (f2, d2, k2) = (Arc::clone(&flag), Arc::clone(&data), Arc::clone(&counter));
            ex.spawn(move || {
                data.set(42);
                flag.write(true);
                // CAS retry loop (benign pattern 1).
                loop {
                    let v = counter.load();
                    if counter.compare_exchange(v, v + 1).is_ok() {
                        break;
                    }
                }
            });
            ex.spawn(move || {
                if f2.read() {
                    assert_eq!(d2.get(), 42, "publication is ordered");
                }
                loop {
                    let v = k2.load();
                    if k2.compare_exchange(v, v + 1).is_ok() {
                        break;
                    }
                }
            });
        },
        |log| {
            assert!(detect_races(log).is_empty());
            if check_serializability(log).is_err() {
                any_serializability_warning = true;
            }
        },
    );
    assert!(
        any_serializability_warning,
        "interleaved CAS loops violate conflict serializability on correct code"
    );
}

#[test]
fn serial_executions_are_always_serializable() {
    // In serial mode every operation runs atomically: the conflict graph
    // follows the serial order and can never have a cycle.
    let config = Config::serial().with_access_log(true);
    explore(
        &config,
        |ex| {
            let counter = Arc::new(Atomic::new(0u32));
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                ex.spawn(move || {
                    let v = counter.load();
                    counter.store(v + 1);
                });
            }
        },
        |run| {
            assert!(
                check_serializability(&run.access_log).is_ok(),
                "serial runs are conflict-serializable by construction"
            );
            ControlFlow::Continue(())
        },
    );
}
