//! Direct model-checked invariants of the collection classes: instead of
//! Line-Up's black-box witness checking, these tests assert structural
//! invariants inside exhaustive (or preemption-bounded) explorations —
//! complementary evidence that the fixed variants are correct.

use std::ops::ControlFlow;
use std::sync::Arc;

use lineup_collections::barrier::Barrier;
use lineup_collections::blocking_collection::BlockingCollection;
use lineup_collections::concurrent_dictionary::ConcurrentDictionary;
use lineup_collections::concurrent_queue::ConcurrentQueue;
use lineup_collections::concurrent_stack::ConcurrentStack;
use lineup_collections::countdown_event::CountdownEvent;
use lineup_collections::semaphore_slim::SemaphoreSlim;
use lineup_collections::task_completion_source::TaskCompletionSource;
use lineup_sched::{explore, Config, Probe, RunOutcome};

#[test]
fn queue_preserves_per_producer_fifo() {
    // Two producers each enqueue an ascending pair; every schedule must
    // dequeue each producer's elements in order.
    let probe: Probe<Arc<ConcurrentQueue>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let q = Arc::new(ConcurrentQueue::new());
            setup.put(Arc::clone(&q));
            for base in [10i64, 20] {
                let q = Arc::clone(&q);
                ex.spawn(move || {
                    q.enqueue(base);
                    q.enqueue(base + 1);
                });
            }
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let q = probe.take();
            let drained: Vec<i64> = std::iter::from_fn(|| q.try_dequeue()).collect();
            assert_eq!(drained.len(), 4);
            let tens: Vec<i64> = drained.iter().copied().filter(|v| *v < 20).collect();
            let twenties: Vec<i64> = drained.iter().copied().filter(|v| *v >= 20).collect();
            assert_eq!(tens, vec![10, 11], "producer 1 order preserved");
            assert_eq!(twenties, vec![20, 21], "producer 2 order preserved");
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn stack_pop_range_is_contiguous() {
    // With [3,2,1] on the stack and a concurrent pop, the fixed
    // TryPopRange always unlinks a contiguous segment from the top.
    type StackProbe = Probe<(Arc<ConcurrentStack>, Arc<lineup_sync::DataCell<Vec<i64>>>)>;
    let probe: StackProbe = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let s = Arc::new(ConcurrentStack::new());
            s.push(1);
            s.push(2);
            s.push(3);
            let got = Arc::new(lineup_sync::DataCell::new(Vec::new()));
            setup.put((Arc::clone(&s), Arc::clone(&got)));
            let s2 = Arc::clone(&s);
            ex.spawn(move || {
                let range = s.try_pop_range(2);
                got.set(range);
            });
            ex.spawn(move || {
                let _ = s2.try_pop();
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let (_, got) = probe.take();
            let range = got.get_clone();
            // The only contiguous 2-segments of [3,2,1] are [3,2] and
            // [2,1]; after a concurrent single pop, [3,2] or [2,1] remain
            // possible, plus shorter leftovers.
            assert!(
                matches!(range.as_slice(), [3, 2] | [2, 1] | [3] | [2] | [1] | []),
                "non-contiguous range {range:?}"
            );
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn dictionary_count_matches_contents() {
    let probe: Probe<Arc<ConcurrentDictionary>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let d = Arc::new(ConcurrentDictionary::new());
            setup.put(Arc::clone(&d));
            let d1 = Arc::clone(&d);
            let d2 = Arc::clone(&d);
            ex.spawn(move || {
                d1.try_add(10, 1);
                d1.try_remove(20);
            });
            ex.spawn(move || {
                d2.try_add(20, 2);
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let d = probe.take();
            let mut expected = 0;
            for k in [10, 20] {
                if d.contains_key(k) {
                    expected += 1;
                }
            }
            assert_eq!(d.count(), expected, "count matches surviving keys");
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn semaphore_count_is_conserved() {
    // permits released == permits acquired + current count.
    let probe: Probe<Arc<SemaphoreSlim>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let s = Arc::new(SemaphoreSlim::new(1));
            setup.put(Arc::clone(&s));
            let s1 = Arc::clone(&s);
            let s2 = Arc::clone(&s);
            ex.spawn(move || {
                s1.release(2);
            });
            ex.spawn(move || {
                let _got = s2.try_wait();
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let s = probe.take();
            let count = s.current_count();
            assert!(
                count == 2 || count == 3,
                "1 + 2 released − (0|1) taken, got {count}"
            );
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn countdown_event_sets_exactly_at_zero() {
    let probe: Probe<Arc<CountdownEvent>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let e = Arc::new(CountdownEvent::new(2));
            setup.put(Arc::clone(&e));
            for _ in 0..2 {
                let e = Arc::clone(&e);
                ex.spawn(move || {
                    let _ = e.signal(1);
                });
            }
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let e = probe.take();
            assert!(e.is_set(), "both signals landed");
            assert_eq!(e.current_count(), 0);
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn barrier_advances_exactly_one_phase() {
    let probe: Probe<Arc<Barrier>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let b = Arc::new(Barrier::new(2));
            setup.put(Arc::clone(&b));
            for _ in 0..2 {
                let b = Arc::clone(&b);
                ex.spawn(move || {
                    assert_eq!(b.signal_and_wait(), 0, "both pass phase 0");
                });
            }
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete, "no schedule hangs");
            let b = probe.take();
            assert_eq!(b.current_phase_number(), 1);
            assert_eq!(b.participants_remaining(), 2);
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn task_completion_has_exactly_one_winner() {
    let probe: Probe<Arc<TaskCompletionSource>> = Probe::new();
    let setup = probe.clone();
    let wins: Probe<Arc<lineup_sync::DataCell<(bool, bool)>>> = Probe::new();
    let wins_setup = wins.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let t = Arc::new(TaskCompletionSource::new());
            let w = Arc::new(lineup_sync::DataCell::new((false, false)));
            setup.put(Arc::clone(&t));
            wins_setup.put(Arc::clone(&w));
            let (t1, w1) = (Arc::clone(&t), Arc::clone(&w));
            let (t2, w2) = (Arc::clone(&t), Arc::clone(&w));
            ex.spawn(move || {
                let won = t1.try_set_result(5);
                w1.with_mut(|v| v.0 = won);
            });
            ex.spawn(move || {
                let won = t2.try_set_canceled();
                w2.with_mut(|v| v.1 = won);
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let t = probe.take();
            let (result_won, cancel_won) = wins.take().get();
            assert!(result_won ^ cancel_won, "exactly one completer wins");
            if result_won {
                assert_eq!(t.try_result(), Some(5));
            } else {
                assert_eq!(t.exception(), Some("TaskCanceledException"));
            }
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn blocking_collection_bounded_capacity_is_respected() {
    let probe: Probe<Arc<BlockingCollection>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let c = Arc::new(BlockingCollection::new(1));
            setup.put(Arc::clone(&c));
            let c1 = Arc::clone(&c);
            let c2 = Arc::clone(&c);
            ex.spawn(move || {
                let _ = c1.try_add(1);
                let _ = c1.try_add(2);
            });
            ex.spawn(move || {
                let _ = c2.try_add(3);
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let c = probe.take();
            assert!(c.to_vec().len() <= 1, "capacity 1 never exceeded");
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn queue_to_vec_snapshot_is_a_queue_state() {
    // A snapshot taken during concurrent enqueue/dequeue is always some
    // contiguous queue state (prefix removed, suffix possibly missing).
    let probe: Probe<Arc<lineup_sync::DataCell<Vec<i64>>>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let q = Arc::new(ConcurrentQueue::new());
            q.enqueue(1);
            q.enqueue(2);
            let snap = Arc::new(lineup_sync::DataCell::new(Vec::new()));
            setup.put(Arc::clone(&snap));
            let q2 = Arc::clone(&q);
            ex.spawn(move || {
                let v = q.to_vec();
                snap.set(v);
            });
            ex.spawn(move || {
                let _ = q2.try_dequeue();
                q2.enqueue(3);
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let snap = probe.take().get_clone();
            // Valid snapshots: any state of the queue along the way.
            let valid: &[&[i64]] = &[&[1, 2], &[2], &[2, 3], &[1, 2, 3], &[]];
            assert!(
                valid.contains(&snap.as_slice()),
                "snapshot {snap:?} is not a reachable queue state"
            );
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn countdown_add_count_never_resurrects_a_set_event() {
    // Once the event is set (count 0), TryAddCount must fail in every
    // schedule — no race may resurrect the event.
    let probe: Probe<Arc<CountdownEvent>> = Probe::new();
    let setup = probe.clone();
    explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let e = Arc::new(CountdownEvent::new(1));
            setup.put(Arc::clone(&e));
            let e1 = Arc::clone(&e);
            let e2 = Arc::clone(&e);
            ex.spawn(move || {
                let _ = e1.signal(1);
            });
            ex.spawn(move || {
                let _ = e2.try_add_count(1);
            });
        },
        |run| {
            assert_eq!(run.outcome, RunOutcome::Complete);
            let e = probe.take();
            // Either the add landed before the signal (count back to 1
            // then down to... no: add makes 2, signal makes 1) or it
            // failed after the event set. Never a set event with count>0
            // or an unset event with count 0 mismatch.
            assert_eq!(e.is_set(), e.current_count() == 0);
            ControlFlow::Continue(())
        },
    );
}

#[test]
fn barrier_add_participant_during_wait_is_consistent() {
    // AddParticipant racing a SignalAndWait either raises the bar before
    // the waiters arrive (they block until a third arrival — which never
    // comes, so those schedules deadlock) or after the phase completed.
    // Either way the barrier's bookkeeping stays consistent.
    let probe: Probe<Arc<Barrier>> = Probe::new();
    let setup = probe.clone();
    let stats = explore(
        &Config::preemption_bounded(2),
        move |ex| {
            let b = Arc::new(Barrier::new(2));
            setup.put(Arc::clone(&b));
            for _ in 0..2 {
                let b = Arc::clone(&b);
                ex.spawn(move || {
                    let _ = b.signal_and_wait();
                });
            }
            let b3 = Arc::clone(&b);
            ex.spawn(move || {
                let _ = b3.add_participant();
            });
        },
        |run| {
            let b = probe.take();
            assert_eq!(b.participant_count(), 3);
            if run.outcome == RunOutcome::Complete {
                // Phase advanced exactly once before the third seat existed.
                assert_eq!(b.current_phase_number(), 1);
            }
            ControlFlow::Continue(())
        },
    );
    assert!(stats.complete > 0, "add-after-phase schedules complete");
    assert!(
        stats.deadlock > 0,
        "add-before-arrival schedules strand the waiters"
    );
}
