//! End-to-end integration tests spanning all crates: every class of the
//! registry is checked with a targeted test matrix; fixed variants pass,
//! seeded root causes are detected, and the detected violation kinds
//! match the paper's classification.

use lineup::{CheckOptions, Invocation, TestMatrix, Violation};
use lineup_collections::{all_classes, RootCause, Variant};

fn inv(name: &str) -> Invocation {
    Invocation::new(name)
}

fn inv_i(name: &str, x: i64) -> Invocation {
    Invocation::with_int(name, x)
}

/// A targeted matrix per class that exposes the class's root cause (on
/// pre variants) and meaningfully exercises fixed variants. Classes with
/// seeded causes use the registry's regression matrices; the rest get a
/// local exercise matrix.
fn demo_matrix(class: &str) -> TestMatrix {
    if let Some(m) = all_classes()
        .iter()
        .find(|e| e.name == class)
        .and_then(|e| e.regression_matrix())
    {
        return m;
    }
    match class.trim_end_matches(" (Pre)") {
        "Lazy Initialization" => TestMatrix::from_columns(vec![
            vec![inv("Value"), inv("IsValueCreated")],
            vec![inv("Value")],
        ]),
        "ManualResetEvent" => TestMatrix::from_columns(vec![
            vec![inv("Wait")],
            vec![inv("Set"), inv("Reset"), inv("Set")],
        ]),
        "SemaphoreSlim" => TestMatrix::from_columns(vec![
            vec![inv("Wait")],
            vec![inv("Wait")],
            vec![inv_i("Release", 2)],
        ]),
        "CountdownEvent" => TestMatrix::from_columns(vec![
            vec![inv("Signal")],
            vec![inv("Signal")],
            vec![inv("Wait")],
        ]),
        "ConcurrentDictionary" => {
            TestMatrix::from_columns(vec![vec![inv_i("TryAdd", 10)], vec![inv_i("TryAdd", 20)]])
                .with_finally(vec![inv("Count")])
        }
        "ConcurrentQueue" => TestMatrix::from_columns(vec![
            vec![inv_i("Enqueue", 200), inv_i("Enqueue", 400)],
            vec![inv("TryDequeue"), inv("TryDequeue")],
        ]),
        "ConcurrentStack" => {
            TestMatrix::from_columns(vec![vec![inv("TryPopRangeTwo")], vec![inv("TryPop")]])
                .with_init(vec![inv_i("Push", 1), inv_i("Push", 2), inv_i("Push", 3)])
        }
        "ConcurrentLinkedList" => {
            TestMatrix::from_columns(vec![vec![inv("RemoveFirst")], vec![inv("RemoveList")]])
                .with_init(vec![inv_i("AddLast", 10)])
        }
        "BlockingCollection" => TestMatrix::from_columns(vec![
            vec![inv("CompleteAdding")],
            vec![inv_i("TryAdd", 10)],
            vec![inv_i("TryAdd", 20)],
        ]),
        "ConcurrentBag" => TestMatrix::from_columns(vec![
            vec![inv_i("Add", 10)],
            vec![inv("TryTake")],
            vec![inv_i("Add", 30), inv("TryTake")],
        ]),
        "TaskCompletionSource" => TestMatrix::from_columns(vec![
            vec![inv_i("TrySetResult", 10)],
            vec![inv("TrySetCanceled"), inv("TryResult")],
        ]),
        "CancellationTokenSource" => TestMatrix::from_columns(vec![
            vec![inv("Increment"), inv("IsCancellationRequested")],
            vec![inv("Cancel")],
        ]),
        "Barrier" => {
            TestMatrix::from_columns(vec![vec![inv("SignalAndWait")], vec![inv("SignalAndWait")]])
        }
        other => panic!("no demo matrix for {other}"),
    }
}

/// Classes whose *fixed* entry intentionally violates deterministic
/// linearizability (root causes H–L live in the shipped variants).
fn intentionally_violating(class: &str) -> bool {
    matches!(class, "BlockingCollection" | "ConcurrentBag" | "Barrier")
}

#[test]
fn fixed_variants_pass_their_demo_matrices() {
    for entry in all_classes()
        .iter()
        .filter(|e| e.variant == Variant::Fixed && !intentionally_violating(e.name))
    {
        let m = demo_matrix(entry.name);
        let report = entry.target().check(&m, &CheckOptions::new());
        assert!(
            report.passed(),
            "{} should pass but got {:?}",
            entry.name,
            report.violations
        );
    }
}

#[test]
fn seeded_bugs_are_detected() {
    for entry in all_classes().iter().filter(|e| e.variant == Variant::Pre) {
        let m = demo_matrix(entry.name);
        let report = entry.target().check(&m, &CheckOptions::new());
        assert!(
            !report.passed(),
            "{} carries {:?} and must fail",
            entry.name,
            entry.expected_root_causes
        );
    }
}

#[test]
fn intentional_violations_are_detected() {
    for entry in all_classes()
        .iter()
        .filter(|e| e.variant == Variant::Fixed && intentionally_violating(e.name))
    {
        let m = demo_matrix(entry.name);
        let report = entry.target().check(&m, &CheckOptions::new());
        assert!(
            !report.passed(),
            "{} carries intentional root causes {:?}",
            entry.name,
            entry.expected_root_causes
        );
    }
}

/// The liveness bugs (A, C, E on the Wait path) are found as *stuck*
/// histories — the generalized-linearizability capability the paper
/// credits for 5 of its 13 testable classes (§5.5).
#[test]
fn liveness_bugs_surface_as_stuck_histories() {
    for (class, cause) in [
        ("ManualResetEvent (Pre)", RootCause::A),
        ("SemaphoreSlim (Pre)", RootCause::C),
    ] {
        let entry = all_classes().into_iter().find(|e| e.name == class).unwrap();
        assert!(entry.expected_root_causes.contains(&cause));
        let report = entry
            .target()
            .check(&demo_matrix(class), &CheckOptions::new());
        assert!(
            matches!(
                report.first_violation(),
                Some(Violation::StuckNoWitness { .. })
            ),
            "{class}: {:?}",
            report.violations
        );
    }
}

/// Safety bugs surface as complete histories with no witness.
#[test]
fn safety_bugs_surface_as_missing_witnesses() {
    for class in ["ConcurrentQueue (Pre)", "ConcurrentDictionary (Pre)"] {
        let entry = all_classes().into_iter().find(|e| e.name == class).unwrap();
        let report = entry
            .target()
            .check(&demo_matrix(class), &CheckOptions::new());
        assert!(
            matches!(report.first_violation(), Some(Violation::NoWitness { .. })),
            "{class}: {:?}",
            report.violations
        );
    }
}

/// The crash bug (G) surfaces as a captured panic.
#[test]
fn crash_bug_surfaces_as_panic() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentLinkedList (Pre)")
        .unwrap();
    let report = entry
        .target()
        .check(&demo_matrix(entry.name), &CheckOptions::new());
    assert!(matches!(
        report.first_violation(),
        Some(Violation::Panic { .. })
    ));
}

/// Shrinking a failing test yields a smaller failing test (the automated
/// §5.1 reduction), and the result still fails.
#[test]
fn shrinking_preserves_failure() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .unwrap();
    let big = TestMatrix::from_columns(vec![
        vec![inv_i("Enqueue", 200), inv_i("Enqueue", 400), inv("Count")],
        vec![inv("TryDequeue"), inv("TryDequeue"), inv("IsEmpty")],
    ]);
    let opts = CheckOptions::new();
    assert!(!entry.target().check(&big, &opts).passed());
    let (small, _) = entry.target().shrink_failing_test(&big, &opts);
    assert!(small.operation_count() < big.operation_count());
    assert!(!entry.target().check(&small, &opts).passed());
}

/// Violations carry replayable scheduler decisions: re-executing them
/// reproduces the exact violating history (here for the Fig. 9 stuck
/// Wait).
#[test]
fn violations_replay_deterministically() {
    use lineup_collections::manual_reset_event::{fig9_matrix, ManualResetEventTarget};
    let target = ManualResetEventTarget {
        variant: Variant::Pre,
    };
    let matrix = fig9_matrix();
    let opts = CheckOptions::new();
    let report = lineup::check(&target, &matrix, &opts);
    let (history, decisions) = match report.first_violation().unwrap() {
        Violation::StuckNoWitness {
            history, decisions, ..
        } => (history.clone(), decisions.clone()),
        other => panic!("unexpected violation {other:?}"),
    };
    let run = lineup::replay_matrix(&target, &matrix, decisions, opts.preemption_bound);
    assert_eq!(run.history, history, "replay reproduces the violation");
    assert!(run.outcome.is_stuck());
}

/// Panic messages from the component under test survive into the report.
#[test]
fn panic_messages_are_preserved() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentLinkedList (Pre)")
        .unwrap();
    let report = entry
        .target()
        .check(&demo_matrix(entry.name), &CheckOptions::new());
    match report.first_violation().unwrap() {
        Violation::Panic { message, .. } => {
            assert!(
                message.contains("removal from emptied list"),
                "got {message:?}"
            );
        }
        other => panic!("expected panic violation, got {other:?}"),
    }
}
