//! The same-thread continuation fast path is unobservable (ISSUE
//! acceptance): a schedule point that keeps the baton on the running
//! thread skips only the park/unpark pair, never the decision, the
//! recording, or the POR bookkeeping. Exploring any class with the fast
//! path forced off ([`CheckOptions::with_fast_path`]) must therefore be
//! *byte-identical* — same verdicts, same violation list in the same
//! order with the same reproducing decisions, same distinct-history
//! counts, same run and step counts — with POR on or off and under
//! parallel exploration. The only permitted difference is the split of
//! steps between `fast_path_steps` and `handoffs`.

use lineup::{replay_matrix, CheckOptions, TestMatrix, Violation};
use lineup_collections::registry::{all_classes, ClassEntry};

/// Renders the full violation list, decisions included: the fast path
/// must not change the exploration order, so unlike the POR equivalence
/// tests no sorting or deduplication is allowed here.
fn rendered(violations: &[Violation]) -> Vec<String> {
    violations.iter().map(|v| format!("{v:?}")).collect()
}

/// A small matrix exercising `entry`: its own regression matrix when it
/// has one, else the seeded sibling's (same component, same methods),
/// else a minimal two-column test from the target's catalog.
fn matrix_for(entry: &ClassEntry, all: &[ClassEntry]) -> TestMatrix {
    if entry.name == "ConcurrentBag" {
        // The bag's `TryTake` scans every per-thread list; keep the
        // POR-off baseline finite by comparing on concurrent `Add`s.
        return TestMatrix::from_columns(vec![
            vec![lineup::Invocation::with_int("Add", 10)],
            vec![lineup::Invocation::with_int("Add", 20)],
        ]);
    }
    if let Some(m) = entry.regression_matrix() {
        return m;
    }
    let pre = format!("{} (Pre)", entry.name);
    if let Some(m) = all
        .iter()
        .find(|e| e.name == pre)
        .and_then(|e| e.regression_matrix())
    {
        return m;
    }
    let invs = entry.target().invocations();
    let a = invs[0].clone();
    let b = invs.get(1).cloned().unwrap_or_else(|| invs[0].clone());
    TestMatrix::from_columns(vec![vec![a.clone(), b.clone()], vec![b, a]])
}

/// Shrinks a matrix so the exhaustive exploration stays feasible in a
/// debug-build test: at most two columns of at most two operations.
fn small(mut m: TestMatrix) -> TestMatrix {
    m.columns.truncate(2);
    if let Some(c) = m.columns.first_mut() {
        c.truncate(2);
    }
    if let Some(c) = m.columns.get_mut(1) {
        c.truncate(1);
    }
    m.finally.truncate(1);
    m
}

fn exhaustive(por: bool, fast_path: bool) -> CheckOptions {
    CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .with_fast_path(fast_path)
        .collect_all_violations()
}

/// Asserts the byte-identity contract between a fast-path and a
/// forced-slow-path report of the same check.
fn assert_identical(name: &str, fast: &lineup::CheckReport, slow: &lineup::CheckReport) {
    assert_eq!(
        fast.passed(),
        slow.passed(),
        "{name}: verdict must not change with the fast path off"
    );
    assert_eq!(
        rendered(&fast.violations),
        rendered(&slow.violations),
        "{name}: violation lists (order and decisions included) must be byte-identical"
    );
    assert_eq!(
        fast.phase2.full_histories, slow.phase2.full_histories,
        "{name}: distinct full histories must match"
    );
    assert_eq!(
        fast.phase2.stuck_histories, slow.phase2.stuck_histories,
        "{name}: distinct stuck histories must match"
    );
    assert_eq!(
        fast.phase2.runs, slow.phase2.runs,
        "{name}: run counts must match"
    );
    assert_eq!(
        fast.phase2.sleep_prunes, slow.phase2.sleep_prunes,
        "{name}: sleep-set prunes must match"
    );
    assert_eq!(
        fast.phase2.total_steps, slow.phase2.total_steps,
        "{name}: the fast path skips handoffs, never schedule points"
    );
    assert_eq!(
        slow.phase2.fast_path_steps, 0,
        "{name}: the knob must force every step through a handoff"
    );
    assert_eq!(
        slow.phase2.handoffs,
        fast.phase2.handoffs + fast.phase2.fast_path_steps,
        "{name}: every skipped handoff reappears when the knob is off"
    );
}

#[test]
fn fast_path_off_is_byte_identical_on_every_class() {
    let all = all_classes();
    for entry in &all {
        let matrix = small(matrix_for(entry, &all));
        eprintln!("checking {} (fast path on)...", entry.name);
        let fast = entry.target().check(&matrix, &exhaustive(false, true));
        eprintln!(
            "  runs={} fast_path_steps={} handoffs={}",
            fast.phase2.runs, fast.phase2.fast_path_steps, fast.phase2.handoffs
        );
        let slow = entry.target().check(&matrix, &exhaustive(false, false));
        assert_identical(entry.name, &fast, &slow);
    }
}

#[test]
fn fast_path_equivalence_holds_under_por() {
    // POR settles footprints and consults sleep sets at every schedule
    // point; the fast path must leave all of that in place, so the
    // reduced explorations must also be byte-identical.
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        let fast = entry.target().check(&matrix, &exhaustive(true, true));
        let slow = entry.target().check(&matrix, &exhaustive(true, false));
        assert_identical(entry.name, &fast, &slow);
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn fast_path_equivalence_holds_under_two_workers() {
    // Parallel exploration adds the work-stealing pool's lazy prefix
    // replays; stolen subtrees must cover the tree the same way
    // regardless of the fast path. POR stays off here: with it on,
    // steal-timing decides which sleep-set nodes get promoted, so run
    // counts are not comparable across two executions — POR-off work
    // stealing partitions the tree exactly, making every counter
    // deterministic.
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        // Probe disabled so the stealing machinery is exercised even on
        // matrices below the auto-serial threshold.
        let fast = entry.target().check(
            &matrix,
            &exhaustive(false, true)
                .with_workers(2)
                .with_parallel_probe_runs(0),
        );
        let slow = entry.target().check(
            &matrix,
            &exhaustive(false, false)
                .with_workers(2)
                .with_parallel_probe_runs(0),
        );
        assert_identical(entry.name, &fast, &slow);
        assert_eq!(
            fast.phase2.frontier_replays, 0,
            "{}: no eager prefix re-execution under work stealing",
            entry.name
        );
        assert_eq!(slow.phase2.frontier_replays, 0);
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn recorded_violations_replay_identically_under_either_mode() {
    // A schedule recorded with the fast path on must replay to the same
    // history whether or not the replaying exploration uses the fast
    // path — the decision indexes refer to schedule points, which the
    // fast path never elides.
    use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
    use lineup_collections::registry::Variant;

    let target = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let all = all_classes();
    let entry = all
        .iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry has the seeded queue");
    let matrix = entry.regression_matrix().expect("regression matrix");
    let opts = CheckOptions::new().with_preemption_bound(None);
    let fast = lineup::check(&target, &matrix, &opts);
    let slow = lineup::check(&target, &matrix, &opts.clone().with_fast_path(false));
    assert!(!fast.passed() && !slow.passed(), "the seeded bug is found");
    let (
        Some(Violation::NoWitness { history, decisions }),
        Some(Violation::NoWitness {
            history: h2,
            decisions: d2,
        }),
    ) = (fast.first_violation(), slow.first_violation())
    else {
        panic!("expected no-witness violations");
    };
    assert_eq!(history, h2, "same violating history either way");
    assert_eq!(decisions, d2, "same reproducing schedule either way");
    let run = replay_matrix(&target, &matrix, decisions.clone(), None);
    assert_eq!(
        &run.history, history,
        "replaying the recorded decisions reproduces the history"
    );
}
