//! ISSUE acceptance: on every history recorded under the model checker,
//! the `lineup-monitor` backend returns the same accept/reject verdict as
//! the existing `find_witness` path.
//!
//! The comparison runs `check` twice per class — once with the default
//! SpecIndex witness search, once with
//! `CheckOptions::with_monitor_backend` — collecting *all* violations.
//! Since phase 2 checks each distinct history exactly once and reports
//! every rejection, equal violation lists plus equal distinct-history
//! counts mean the two backends agreed on every recorded history, full
//! and stuck alike.

use lineup::{CheckOptions, TestMatrix, Violation};
use lineup_collections::registry::all_classes;
use lineup_monitor::{adt_monitor_backend, monitor_backend};

/// Renders a violation without its reproducing `decisions` (the verdict
/// is per history; the decision path may come from whichever schedule
/// first reached it).
fn violation_keys(violations: &[Violation]) -> Vec<String> {
    violations
        .iter()
        .map(|v| match v {
            Violation::Nondeterminism(nd) => format!("nondeterminism: {nd:?}"),
            Violation::NoWitness { history, .. } => format!("no-witness: {history:?}"),
            Violation::StuckNoWitness {
                history, pending, ..
            } => format!("stuck-no-witness: {pending:?} {history:?}"),
            Violation::Panic {
                message, history, ..
            } => format!("panic: {message} {history:?}"),
        })
        .collect()
}

/// The matrices to compare a class on: its own regression matrices, or —
/// for fixed variants, which have no expected root causes — the matrices
/// of the seeded "(Pre)" sibling, exercised against the fixed code.
fn matrices_for(entry: &lineup_collections::registry::ClassEntry) -> Vec<TestMatrix> {
    let own = entry.regression_matrices();
    if !own.is_empty() {
        return own;
    }
    all_classes()
        .iter()
        .find(|e| e.name.trim_end_matches(" (Pre)") == entry.name && e.name != entry.name)
        .map(|sibling| sibling.regression_matrices())
        .unwrap_or_default()
}

#[test]
fn monitor_backend_matches_find_witness_on_all_classes() {
    let mut fixed_checked = 0;
    let mut pre_checked = 0;
    for entry in all_classes() {
        let matrices = matrices_for(&entry);
        if matrices.is_empty() {
            continue;
        }
        for matrix in matrices {
            let opts = CheckOptions::new().collect_all_violations();
            let base = entry.target().check(&matrix, &opts);
            let mon_opts = opts
                .clone()
                .with_monitor_backend(monitor_backend(entry.target_arc(), &matrix));
            let mon = entry.target().check(&matrix, &mon_opts);
            assert_eq!(
                base.passed(),
                mon.passed(),
                "{}: verdict differs on\n{matrix}",
                entry.name
            );
            assert_eq!(
                violation_keys(&base.violations),
                violation_keys(&mon.violations),
                "{}: violation set differs on\n{matrix}",
                entry.name
            );
            assert_eq!(
                base.phase2.full_histories, mon.phase2.full_histories,
                "{}: distinct full histories differ",
                entry.name
            );
            assert_eq!(
                base.phase2.stuck_histories, mon.phase2.stuck_histories,
                "{}: distinct stuck histories differ",
                entry.name
            );
        }
        if entry.name.ends_with("(Pre)") {
            pre_checked += 1;
        } else {
            fixed_checked += 1;
        }
    }
    assert!(
        fixed_checked >= 3 && pre_checked >= 3,
        "expected fixed and Pre coverage, got {fixed_checked} fixed / {pre_checked} Pre"
    );
}

#[test]
fn kind_annotated_backend_matches_find_witness_on_all_classes() {
    // Same comparison as above, but the monitor carries the registry's
    // ADT-kind annotation: checks of unambiguous histories are decided
    // by the specialized log-linear checkers, the rest fall back to
    // Wing–Gong — and neither path may change any verdict.
    let mut annotated = 0;
    for entry in all_classes() {
        let matrices = matrices_for(&entry);
        if matrices.is_empty() {
            continue;
        }
        for matrix in matrices {
            let opts = CheckOptions::new().collect_all_violations();
            let base = entry.target().check(&matrix, &opts);
            let backend = adt_monitor_backend(entry.target_arc(), &matrix, entry.adt_kind);
            let mon_opts = opts.clone().with_monitor_backend(backend.clone());
            let mon = entry.target().check(&matrix, &mon_opts);
            assert_eq!(
                base.passed(),
                mon.passed(),
                "{}: verdict differs on\n{matrix}",
                entry.name
            );
            assert_eq!(
                violation_keys(&base.violations),
                violation_keys(&mon.violations),
                "{}: violation set differs on\n{matrix}",
                entry.name
            );
            let paths = backend.stats().paths;
            if entry.adt_kind.is_none() {
                assert_eq!(
                    paths.specialized_checks, 0,
                    "{}: unannotated monitor took a specialized path",
                    entry.name
                );
            } else {
                annotated += 1;
            }
        }
    }
    assert!(
        annotated >= 3,
        "expected annotated coverage, got {annotated}"
    );
}

#[test]
fn monitor_backend_agrees_with_parallel_exploration() {
    // The backend plugs into the worker-parallel phase 2 the same way as
    // the serial one (both paths go through the shared verdict helpers).
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentDictionary (Pre)")
        .expect("registry has the seeded dictionary");
    let matrix = entry.regression_matrix().expect("regression matrix");
    let opts = CheckOptions::new()
        .collect_all_violations()
        .with_monitor_backend(monitor_backend(entry.target_arc(), &matrix));
    let serial = entry.target().check(&matrix, &opts);
    let par = entry.target().check(
        &matrix,
        &opts.clone().with_workers(4).with_parallel_probe_runs(0),
    );
    assert!(!serial.passed());
    assert_eq!(
        violation_keys(&serial.violations),
        violation_keys(&par.violations)
    );
}
