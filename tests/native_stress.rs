//! ISSUE acceptance for the native stress mode: real-thread execution
//! with online monitoring runs green on fixed collection classes and
//! detects at least one seeded "(Pre)" violation.
//!
//! Stress testing is inherently probabilistic — unlike the model checker
//! it only samples interleavings — so the Pre test allows a generous run
//! budget and relies on seeded yield injection to hit the window. The
//! fixed-class tests are the sound direction: any rejection there would
//! be a real bug (the monitor has no false alarms on deterministic
//! targets).

use std::sync::Arc;

use lineup::{Invocation, TestMatrix};
use lineup_collections::concurrent_dictionary::ConcurrentDictionaryTarget;
use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
use lineup_collections::support::Variant;
use lineup_monitor::{run_stress, Monitor, ReplayOracle, StressOptions};

fn dictionary_matrix() -> TestMatrix {
    TestMatrix::from_columns(vec![
        vec![Invocation::with_int("TryAdd", 10)],
        vec![Invocation::with_int("TryAdd", 20)],
    ])
    .with_finally(vec![Invocation::new("Count")])
}

#[test]
fn fixed_dictionary_stress_is_green() {
    let target = ConcurrentDictionaryTarget {
        variant: Variant::Fixed,
    };
    let m = dictionary_matrix();
    let monitor = Monitor::new(ReplayOracle::new(Arc::new(target), m.init.clone()));
    let report = run_stress(
        &target,
        &m,
        &monitor,
        &StressOptions {
            runs: 300,
            seed: 7,
            ..StressOptions::default()
        },
    );
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.runs, 300);
    assert_eq!(report.stuck_runs, 0);
}

#[test]
fn fixed_queue_stress_is_green() {
    let target = ConcurrentQueueTarget {
        variant: Variant::Fixed,
    };
    let m = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 200),
            Invocation::with_int("Enqueue", 400),
        ],
        vec![Invocation::new("TryDequeue"), Invocation::new("TryDequeue")],
    ]);
    let monitor = Monitor::new(ReplayOracle::new(Arc::new(target), m.init.clone()));
    let report = run_stress(
        &target,
        &m,
        &monitor,
        &StressOptions {
            runs: 300,
            seed: 11,
            ..StressOptions::default()
        },
    );
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.distinct_histories >= 1);
}

#[test]
fn seeded_dictionary_violation_is_detected() {
    // Root cause F: TryAdd updates the count with an unsynchronized
    // read-modify-write after releasing the bucket lock. Two concurrent
    // TryAdds can lose an update; the final Count then observes 1, which
    // no serial execution of a dictionary explains.
    let target = ConcurrentDictionaryTarget {
        variant: Variant::Pre,
    };
    let m = dictionary_matrix();
    let monitor = Monitor::new(ReplayOracle::new(Arc::new(target), m.init.clone()));
    let report = run_stress(
        &target,
        &m,
        &monitor,
        &StressOptions {
            runs: 20_000,
            seed: 3,
            yield_chance: 2,
            stop_at_first_violation: true,
            ..StressOptions::default()
        },
    );
    assert!(
        !report.passed(),
        "expected the seeded lost update within {} runs \
         ({} distinct histories, {} ops)",
        report.runs,
        report.distinct_histories,
        report.ops
    );
    let v = &report.violations[0];
    assert!(v.history.is_complete(), "count violation is a full history");
}
