//! Integration tests for the observation-file format (Fig. 7): the
//! specifications synthesized from the real collection classes must
//! round-trip through the file format, and specifications saved from one
//! process can drive phase-2 checks in another (differential checking).

use lineup::{
    check_against_spec, parse_observation_file, write_observation_file, CheckOptions, Invocation,
    TestMatrix,
};
use lineup_collections::{all_classes, Variant};

fn small_matrix(entry_name: &str, invocations: &[Invocation]) -> TestMatrix {
    // Two threads, first two catalog invocations each — enough to produce
    // groups, blocking (for some classes) and non-trivial interleavings.
    let a = invocations
        .first()
        .cloned()
        .unwrap_or_else(|| panic!("{entry_name} has an empty catalog"));
    let b = invocations.get(1).cloned().unwrap_or_else(|| a.clone());
    TestMatrix::from_columns(vec![vec![a], vec![b]])
}

#[test]
fn all_class_specs_roundtrip_through_the_file_format() {
    for entry in all_classes().iter().filter(|e| e.variant == Variant::Fixed) {
        let m = small_matrix(entry.name, &entry.target().invocations());
        let (spec, _, panic) = entry.target().synthesize_spec(&m);
        assert!(panic.is_none(), "{}: phase 1 must not panic", entry.name);
        let text = write_observation_file(&spec);
        let parsed =
            parse_observation_file(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", entry.name));
        assert_eq!(parsed, spec, "{} round-trips", entry.name);
    }
}

#[test]
fn specs_with_stuck_histories_roundtrip() {
    // The semaphore's Wait blocks on an empty semaphore: the file gets
    // blocking markers and '#' terminators.
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "SemaphoreSlim")
        .unwrap();
    let m = TestMatrix::from_columns(vec![
        vec![Invocation::new("Wait")],
        vec![Invocation::new("Release")],
    ]);
    let (spec, _, _) = entry.target().synthesize_spec(&m);
    assert!(spec.stuck_count() > 0, "Wait-first serial runs block");
    let text = write_observation_file(&spec);
    assert!(text.contains('#'), "stuck histories are marked");
    assert!(text.contains('B'), "blocking ops are marked");
    let parsed = parse_observation_file(&text).unwrap();
    assert_eq!(parsed, spec);
}

#[test]
fn saved_spec_drives_differential_checking() {
    // Synthesize the fixed queue's spec, save it, reload it, and use it to
    // check the preview queue: the Fig. 1 bug is found against the
    // *reference* specification.
    let classes = all_classes();
    let fixed = classes
        .iter()
        .find(|e| e.name == "ConcurrentQueue")
        .unwrap();
    let pre = classes
        .iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .unwrap();
    let m = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 200),
            Invocation::with_int("Enqueue", 400),
        ],
        vec![Invocation::new("TryDequeue"), Invocation::new("TryDequeue")],
    ]);
    let (spec, _, _) = fixed.target().synthesize_spec(&m);
    let reloaded = parse_observation_file(&write_observation_file(&spec)).unwrap();
    assert_eq!(reloaded, spec);

    // The fixed queue is consistent with its own (reloaded) spec.
    // check_against_spec is generic over TestTarget, so go through the
    // erased facade via a fresh check to keep this test simple: the
    // reloaded spec equals the original, which `check` re-synthesizes.
    let report = fixed.target().check(&m, &CheckOptions::new());
    assert!(report.passed());
    assert_eq!(report.spec, reloaded, "check() synthesizes the same spec");

    // And the preview queue violates it.
    use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
    let pre_target = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let (violations, _) = check_against_spec(&pre_target, &m, &reloaded, &CheckOptions::new());
    assert!(
        !violations.is_empty(),
        "Fig. 1 bug found against saved spec"
    );
    let _ = pre;
}

#[test]
fn observation_file_is_stable_across_synthesis_runs() {
    // Determinism of phase 1: synthesizing twice yields the same file.
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentStack")
        .unwrap();
    let m = small_matrix(entry.name, &entry.target().invocations());
    let (a, _, _) = entry.target().synthesize_spec(&m);
    let (b, _, _) = entry.target().synthesize_spec(&m);
    assert_eq!(write_observation_file(&a), write_observation_file(&b));
}
