//! Parallel phase 2 finds exactly the serial violations (ISSUE
//! acceptance): for the seeded "(Pre)" collection variants,
//! `CheckOptions::with_workers(n)` must report the same violation
//! histories as the default serial exploration — the prefix-partitioned
//! subtrees cover the schedule tree exactly, the verdict of a history is
//! independent of which worker computes it, and the deterministic merge
//! restores serial encounter order.

use lineup::{CheckOptions, Violation};
use lineup_collections::registry::all_classes;

/// Renders a violation without its reproducing `decisions`: the violating
/// histories are what serial/parallel equivalence promises (the paper's
/// Theorem 5 verdict), while the decision path may legitimately come from
/// whichever schedule first reached the history.
fn violation_keys(violations: &[Violation]) -> Vec<String> {
    violations
        .iter()
        .map(|v| match v {
            Violation::Nondeterminism(nd) => format!("nondeterminism: {nd:?}"),
            Violation::NoWitness { history, .. } => format!("no-witness: {history:?}"),
            Violation::StuckNoWitness {
                history, pending, ..
            } => format!("stuck-no-witness: {pending:?} {history:?}"),
            Violation::Panic {
                message, history, ..
            } => format!("panic: {message} {history:?}"),
        })
        .collect()
}

#[test]
fn parallel_first_violation_matches_serial_on_pre_variants() {
    let mut checked = 0;
    for entry in all_classes() {
        if !entry.name.ends_with("(Pre)") {
            continue;
        }
        let Some(matrix) = entry.regression_matrix() else {
            continue;
        };
        let serial = entry.target().check(&matrix, &CheckOptions::new());
        assert!(
            !serial.passed(),
            "{}: the seeded bug should be found serially",
            entry.name
        );
        for workers in [2, 4] {
            let par = entry.target().check(
                &matrix,
                &CheckOptions::new()
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            assert_eq!(
                violation_keys(&serial.violations),
                violation_keys(&par.violations),
                "{} with {workers} workers",
                entry.name
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected at least 3 seeded Pre variants with regression matrices, got {checked}"
    );
}

#[test]
fn parallel_collect_all_matches_serial_violation_set() {
    // Exhaustive (collect-all) comparison on one representative seeded
    // variant: the full violation list — order included — matches.
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry has the seeded queue");
    let matrix = entry.regression_matrix().expect("regression matrix");
    let opts = CheckOptions::new().collect_all_violations();
    let serial = entry.target().check(&matrix, &opts);
    assert!(!serial.passed());
    for workers in [2, 4] {
        let par = entry.target().check(
            &matrix,
            &opts
                .clone()
                .with_workers(workers)
                .with_parallel_probe_runs(0),
        );
        assert_eq!(
            violation_keys(&serial.violations),
            violation_keys(&par.violations),
            "{workers} workers"
        );
        assert_eq!(
            serial.phase2.full_histories, par.phase2.full_histories,
            "distinct full histories agree at {workers} workers"
        );
        assert_eq!(
            serial.phase2.stuck_histories, par.phase2.stuck_histories,
            "distinct stuck histories agree at {workers} workers"
        );
    }
}

#[test]
fn run_counts_match_across_worker_counts() {
    // A stolen task's decision prefix replays *inside* its first run —
    // never as an extra run — so with partial-order reduction off the
    // work-stealing exploration partitions the schedule tree exactly and
    // the run count is identical at any worker count. (The frontier-era
    // checker re-executed one run per subtree prefix and had to account
    // for them separately; `frontier_replays` must now stay zero.) With
    // POR on, a split promotes sleep-set nodes to full exploration, so
    // run counts may legitimately exceed the serial count there — the
    // steal-equivalence suite pins the distinct-history sets instead.
    use lineup::doc_support::CounterTarget;
    let matrix = lineup::TestMatrix::from_columns(vec![
        vec![
            lineup::Invocation::new("inc"),
            lineup::Invocation::new("get"),
        ],
        vec![
            lineup::Invocation::new("inc"),
            lineup::Invocation::new("get"),
        ],
    ]);
    let opts = CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(false)
        .collect_all_violations();
    let serial = lineup::check(&CounterTarget, &matrix, &opts);
    assert_eq!(serial.phase2.frontier_replays, 0);
    for workers in [2, 4] {
        // Probe disabled: this space is below the auto-serial threshold,
        // and the point here is the run accounting under real stealing.
        let par = lineup::check(
            &CounterTarget,
            &matrix,
            &opts
                .clone()
                .with_workers(workers)
                .with_parallel_probe_runs(0),
        );
        assert_eq!(
            serial.phase2.runs, par.phase2.runs,
            "run counts are comparable at {workers} workers"
        );
        assert_eq!(
            par.phase2.frontier_replays, 0,
            "no eager prefix re-execution under work stealing"
        );
        assert!(
            par.phase2.steal_replays <= par.phase2.steals,
            "lazy replays happen only for claimed steals"
        );
    }
}

#[test]
fn parallel_passes_on_a_fixed_variant() {
    // A fixed (non-Pre) class must still pass under parallel exploration.
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentQueue")
        .expect("registry has the fixed queue");
    let matrix = lineup::TestMatrix::from_columns(vec![
        vec![
            lineup::Invocation::with_int("Enqueue", 200),
            lineup::Invocation::with_int("Enqueue", 400),
        ],
        vec![
            lineup::Invocation::new("TryDequeue"),
            lineup::Invocation::new("TryDequeue"),
        ],
    ]);
    let report = entry.target().check(
        &matrix,
        &CheckOptions::new()
            .with_workers(4)
            .with_parallel_probe_runs(0),
    );
    assert!(report.passed(), "{:?}", report.violations);
}
