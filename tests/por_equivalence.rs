//! Partial-order reduction preserves phase-2 completeness (ISSUE
//! acceptance): for every registry class — fixed and "(Pre)" seeded
//! variants — exploring with POR on must reach the same set of distinct
//! observations (full and stuck histories) and the same final verdict as
//! the unreduced exhaustive DFS, because sleep sets and happens-before
//! backtracking only prune schedules that are Mazurkiewicz-equivalent to
//! an explored one (identical history). The same must hold under
//! preemption bounds 0–2 (where POR disengages entirely) and under
//! parallel exploration with two workers.

use lineup::{replay_matrix, CheckOptions, TestMatrix, Violation};
use lineup_collections::registry::{all_classes, ClassEntry};

/// Renders a violation without its reproducing `decisions`: POR may reach
/// a violating history through a different (earlier) schedule than the
/// unreduced search, but the history itself must be identical.
fn violation_keys(violations: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = violations
        .iter()
        .map(|v| match v {
            Violation::Nondeterminism(nd) => format!("nondeterminism: {nd:?}"),
            Violation::NoWitness { history, .. } => format!("no-witness: {history:?}"),
            Violation::StuckNoWitness {
                history, pending, ..
            } => format!("stuck-no-witness: {pending:?} {history:?}"),
            Violation::Panic {
                message, history, ..
            } => format!("panic: {message} {history:?}"),
        })
        .collect();
    // POR changes the *order* schedules are visited in (hence the order
    // distinct violations are first encountered) and the number of
    // schedules reaching a given violating history (panics are reported
    // per occurrence); the *set* of violations is the promise.
    keys.sort();
    keys.dedup();
    keys
}

/// A small matrix exercising `entry`: its own regression matrix when it
/// has one, else the seeded sibling's (same component, same methods),
/// else a minimal two-column test from the target's catalog.
fn matrix_for(entry: &ClassEntry, all: &[ClassEntry]) -> TestMatrix {
    if entry.name == "ConcurrentBag" {
        // The bag's `TryTake` scans every per-thread list, so even a
        // two-operation unreduced baseline exceeds 10⁶ runs (POR needs
        // ~100) — compare on concurrent `Add`s, whose baseline is finite.
        return TestMatrix::from_columns(vec![
            vec![lineup::Invocation::with_int("Add", 10)],
            vec![lineup::Invocation::with_int("Add", 20)],
        ]);
    }
    if let Some(m) = entry.regression_matrix() {
        return m;
    }
    let pre = format!("{} (Pre)", entry.name);
    if let Some(m) = all
        .iter()
        .find(|e| e.name == pre)
        .and_then(|e| e.regression_matrix())
    {
        return m;
    }
    let invs = entry.target().invocations();
    let a = invs[0].clone();
    let b = invs.get(1).cloned().unwrap_or_else(|| invs[0].clone());
    TestMatrix::from_columns(vec![vec![a.clone(), b.clone()], vec![b, a]])
}

/// Shrinks a matrix so the *unreduced* exhaustive baseline stays feasible
/// in a debug-build test: at most two columns of at most two operations
/// (the reduction factors in `EXPERIMENTS.md` are measured on the full
/// matrices by the `phase2` bench instead). Equivalence on the truncated
/// test still exercises the class's real operations and conflicts.
fn small(mut m: TestMatrix) -> TestMatrix {
    m.columns.truncate(2);
    if let Some(c) = m.columns.first_mut() {
        c.truncate(2);
    }
    if let Some(c) = m.columns.get_mut(1) {
        c.truncate(1);
    }
    m.finally.truncate(1);
    m
}

fn exhaustive(por: bool) -> CheckOptions {
    CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .collect_all_violations()
}

#[test]
fn por_matches_unreduced_exhaustive_dfs_on_every_class() {
    let all = all_classes();
    for entry in &all {
        let matrix = small(matrix_for(entry, &all));
        eprintln!("checking {} (plain)...", entry.name);
        let plain = entry.target().check(&matrix, &exhaustive(false));
        eprintln!("  plain runs={}", plain.phase2.runs);
        let reduced = entry.target().check(&matrix, &exhaustive(true));
        eprintln!("  por runs={}", reduced.phase2.runs);
        assert_eq!(
            plain.passed(),
            reduced.passed(),
            "{}: verdict must not change under POR",
            entry.name
        );
        assert_eq!(
            violation_keys(&plain.violations),
            violation_keys(&reduced.violations),
            "{}: distinct violating histories must match",
            entry.name
        );
        assert_eq!(
            plain.phase2.full_histories, reduced.phase2.full_histories,
            "{}: distinct full histories must match",
            entry.name
        );
        assert_eq!(
            plain.phase2.stuck_histories, reduced.phase2.stuck_histories,
            "{}: distinct stuck histories must match",
            entry.name
        );
        assert!(
            reduced.phase2.runs <= plain.phase2.runs,
            "{}: POR must not add runs ({} > {})",
            entry.name,
            reduced.phase2.runs,
            plain.phase2.runs
        );
    }
}

#[test]
fn por_is_inert_under_preemption_bounds() {
    // Sleep sets are unsound under preemption bounding (a bound can
    // disable the schedule that was deferred to), so POR disengages: the
    // bounded explorations must be *identical* run for run.
    let all = all_classes();
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = matrix_for(entry, &all);
        for bound in 0..=2 {
            let opts = |por| {
                CheckOptions::new()
                    .with_preemption_bound(Some(bound))
                    .with_por(por)
                    .collect_all_violations()
            };
            let plain = entry.target().check(&matrix, &opts(false));
            let reduced = entry.target().check(&matrix, &opts(true));
            assert_eq!(
                plain.phase2.runs, reduced.phase2.runs,
                "{} at bound {bound}: POR must disengage",
                entry.name
            );
            assert_eq!(
                violation_keys(&plain.violations),
                violation_keys(&reduced.violations),
                "{} at bound {bound}",
                entry.name
            );
            assert_eq!(plain.phase2.full_histories, reduced.phase2.full_histories);
            assert_eq!(plain.phase2.stuck_histories, reduced.phase2.stuck_histories);
        }
    }
}

#[test]
fn por_matches_unreduced_under_two_workers() {
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        let plain = entry.target().check(&matrix, &exhaustive(false));
        let reduced = entry.target().check(
            &matrix,
            &exhaustive(true).with_workers(2).with_parallel_probe_runs(0),
        );
        assert_eq!(plain.passed(), reduced.passed(), "{}", entry.name);
        // Compare the violating histories as *sets*: a steal promotes
        // sleep-set nodes to full exploration, so which occurrence of a
        // history is encountered first (and hence the report order among
        // distinct histories) can differ from the unreduced serial order.
        let sorted = |vs: &[lineup::Violation]| {
            let mut keys = violation_keys(vs);
            keys.sort();
            keys
        };
        assert_eq!(
            sorted(&plain.violations),
            sorted(&reduced.violations),
            "{} with 2 workers",
            entry.name
        );
        assert_eq!(
            plain.phase2.full_histories, reduced.phase2.full_histories,
            "{} with 2 workers",
            entry.name
        );
        assert_eq!(
            plain.phase2.stuck_histories, reduced.phase2.stuck_histories,
            "{} with 2 workers",
            entry.name
        );
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn por_recorded_violation_replays_choice_for_choice() {
    // A violating schedule found *with POR on* must replay exactly:
    // replay follows the recorded decision indexes and never consults
    // sleep sets, so the indexes recorded against POR's candidate lists
    // resolve to the same threads (POR records against the *full*
    // candidate list precisely so this holds).
    use lineup_collections::concurrent_queue::ConcurrentQueueTarget;
    use lineup_collections::registry::Variant;

    let target = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let all = all_classes();
    let entry = all
        .iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry has the seeded queue");
    let matrix = entry.regression_matrix().expect("regression matrix");
    let report = lineup::check(
        &target,
        &matrix,
        &CheckOptions::new()
            .with_preemption_bound(None)
            .with_por(true),
    );
    assert!(!report.passed(), "the seeded bug must be found under POR");
    let Some(Violation::NoWitness { history, decisions }) = report.first_violation() else {
        panic!("expected a no-witness violation");
    };
    let run = replay_matrix(&target, &matrix, decisions.clone(), None);
    assert_eq!(
        &run.history, history,
        "replaying the POR-recorded decisions reproduces the history"
    );
}
