//! Property-based tests (proptest) over the core Line-Up data structures
//! and algorithms: witness-search soundness, value-format round-trips,
//! matrix algebra, and never-failing checks on a known-correct component.

use proptest::prelude::*;

use lineup::doc_support::CounterTarget;
use lineup::{
    check, find_witness, is_witness, CheckOptions, History, Invocation, ObservationSet, Outcome,
    SerialHistory, SpecOp, TestMatrix, Value, WitnessQuery,
};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        Just(Value::Fail),
        Just(Value::Opt(None)),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        "[a-zA-Z0-9 <>&\"\\\\]{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            inner.prop_map(Value::some),
        ]
    })
}

/// A random serial history over up to 3 threads and a tiny op alphabet.
fn serial_history_strategy() -> impl Strategy<Value = SerialHistory> {
    let op = (0usize..3, 0usize..3, 0i64..4).prop_map(|(thread, name, result)| SpecOp {
        thread,
        invocation: Invocation::new(["put", "take", "len"][name]),
        outcome: Outcome::Returned(Value::Int(result)),
    });
    prop::collection::vec(op, 1..7).prop_map(|ops| SerialHistory {
        thread_count: 3,
        ops,
    })
}

/// Builds a concurrent history from a serial one by optionally overlapping
/// each adjacent pair of different-thread operations (delaying the first
/// return past the second call). This keeps `H|t = S|t` and `<H ⊆ <S`, so
/// `S` remains a witness of the result by construction.
fn overlap(serial: &SerialHistory, overlaps: &[bool]) -> History {
    let mut h = History::new(serial.thread_count);
    let mut i = 0;
    while i < serial.ops.len() {
        let a = &serial.ops[i];
        let overlap_next = overlaps.get(i).copied().unwrap_or(false)
            && i + 1 < serial.ops.len()
            && serial.ops[i + 1].thread != a.thread;
        let va = match &a.outcome {
            Outcome::Returned(v) => v.clone(),
            Outcome::Pending => unreachable!("strategy yields complete ops"),
        };
        if overlap_next {
            let b = &serial.ops[i + 1];
            let vb = match &b.outcome {
                Outcome::Returned(v) => v.clone(),
                Outcome::Pending => unreachable!(),
            };
            let ia = h.push_call(a.thread, a.invocation.clone());
            let ib = h.push_call(b.thread, b.invocation.clone());
            h.push_return(ia, va);
            h.push_return(ib, vb);
            i += 2;
        } else {
            let ia = h.push_call(a.thread, a.invocation.clone());
            h.push_return(ia, va);
            i += 1;
        }
    }
    h
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display → parse round-trips for arbitrary values.
    #[test]
    fn value_display_roundtrips(v in value_strategy()) {
        let text = v.to_string();
        prop_assert_eq!(lineup::value::parse_value(&text), Ok(v));
    }

    /// A history built by overlapping a serial history always finds a
    /// witness when that serial history is in the spec (search soundness
    /// on positives).
    #[test]
    fn overlapped_history_finds_its_witness(
        s in serial_history_strategy(),
        overlaps in prop::collection::vec(any::<bool>(), 0..7),
        extras in prop::collection::vec(serial_history_strategy(), 0..4),
    ) {
        let h = overlap(&s, &overlaps);
        prop_assert!(h.is_well_formed());
        prop_assert!(h.is_complete());
        let mut spec = ObservationSet::new();
        spec.insert(s.clone());
        for e in extras {
            spec.insert(e);
        }
        let q = WitnessQuery::for_full(&h);
        let found = find_witness(&spec.index(), &q);
        prop_assert!(found.is_some(), "S must be a witness of H:\nS = {}\nH =\n{}", s, h);
        // And whatever was found truly is a witness.
        prop_assert!(is_witness(found.unwrap(), &q));
    }

    /// Corrupting one response makes the (singleton-spec) witness search
    /// fail: the per-thread key no longer matches (search soundness on
    /// negatives).
    #[test]
    fn corrupted_history_has_no_witness(
        s in serial_history_strategy(),
        overlaps in prop::collection::vec(any::<bool>(), 0..7),
        at in 0usize..7,
    ) {
        let mut h = overlap(&s, &overlaps);
        let at = at % h.ops.len();
        // Corrupt to a value outside the strategy's result range.
        h.ops[at].response = Some(Value::Int(999));
        let mut spec = ObservationSet::new();
        spec.insert(s);
        let q = WitnessQuery::for_full(&h);
        prop_assert!(find_witness(&spec.index(), &q).is_none());
    }

    /// Witness queries are self-consistent: the serial history viewed as a
    /// (trivially serial) History is its own witness.
    #[test]
    fn serial_history_is_its_own_witness(s in serial_history_strategy()) {
        let h = overlap(&s, &[]);
        let q = WitnessQuery::for_full(&h);
        prop_assert!(is_witness(&s, &q));
    }

    /// Determinism check: a singleton spec is always deterministic; a
    /// duplicated spec too (sets deduplicate).
    #[test]
    fn singleton_specs_are_deterministic(s in serial_history_strategy()) {
        let mut spec = ObservationSet::new();
        spec.insert(s.clone());
        spec.insert(s);
        prop_assert_eq!(spec.len(), 1);
        prop_assert!(spec.check_determinism().is_none());
    }

    /// The observation-file parser never panics on arbitrary input: it
    /// returns a structured error instead (robustness fuzzing).
    #[test]
    fn observation_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = lineup::parse_observation_file(&text);
    }

    /// Nor on mutations of a *valid* file.
    #[test]
    fn observation_parser_survives_mutations(
        histories in prop::collection::vec(serial_history_strategy(), 1..4),
        cut in any::<u16>(),
        insert in "[ -~]{0,8}",
    ) {
        let spec: ObservationSet = histories.into_iter().collect();
        let mut text = lineup::write_observation_file(&spec);
        let pos = (cut as usize) % (text.len() + 1);
        // Insert garbage at a char boundary near pos.
        let pos = text.floor_char_boundary(pos);
        text.insert_str(pos, &insert);
        let _ = lineup::parse_observation_file(&text);
    }

    /// Observation files round-trip for arbitrary specs.
    #[test]
    fn observation_files_roundtrip(
        histories in prop::collection::vec(serial_history_strategy(), 0..6)
    ) {
        let spec: ObservationSet = histories.into_iter().collect();
        let text = lineup::write_observation_file(&spec);
        let parsed = lineup::parse_observation_file(&text).unwrap();
        prop_assert_eq!(parsed, spec);
    }

    /// Matrix enumeration has exactly |I|^(rows·cols) elements and every
    /// element has the right shape.
    #[test]
    fn matrix_enumeration_counts(rows in 1usize..3, cols in 1usize..3, n in 1usize..3) {
        let invs: Vec<Invocation> =
            (0..n).map(|i| Invocation::with_int("op", i as i64)).collect();
        let all = TestMatrix::enumerate(&invs, rows, cols);
        prop_assert_eq!(all.len(), n.pow((rows * cols) as u32));
        for m in &all {
            prop_assert_eq!(m.dimension(), (rows, cols));
            prop_assert_eq!(m.operation_count(), rows * cols);
        }
    }

    /// Prefix order: reflexive, and column-truncations are prefixes.
    #[test]
    fn matrix_prefix_order(rows in 1usize..4, cols in 1usize..4, cut in 0usize..3) {
        let col: Vec<Invocation> =
            (0..rows).map(|i| Invocation::with_int("op", i as i64)).collect();
        let m = TestMatrix::from_columns(vec![col; cols]);
        prop_assert!(m.is_prefix_of(&m));
        let mut small = m.clone();
        let cut = cut.min(rows);
        for c in &mut small.columns {
            c.truncate(rows - cut);
        }
        prop_assert!(small.is_prefix_of(&m));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stuck-history witness search: a serial history whose last op is
    /// made pending is a witness for the overlap-expanded stuck history's
    /// `H[e]` query.
    #[test]
    fn stuck_history_finds_its_witness(
        s in serial_history_strategy(),
        overlaps in prop::collection::vec(any::<bool>(), 0..7),
    ) {
        // Build the stuck serial spec entry: complete prefix + pending last.
        let mut stuck = s.clone();
        let last = stuck.ops.last_mut().unwrap();
        last.outcome = Outcome::Pending;
        prop_assert!(stuck.is_stuck());

        // Build the concurrent history: overlap-expand the complete
        // prefix, then append the pending call (never returned).
        let prefix = SerialHistory {
            thread_count: s.thread_count,
            ops: s.ops[..s.ops.len() - 1].to_vec(),
        };
        let mut h = overlap(&prefix, &overlaps);
        let pending_op = &stuck.ops[stuck.ops.len() - 1];
        let e = h.push_call(pending_op.thread, pending_op.invocation.clone());
        h.stuck = true;

        let mut spec = ObservationSet::new();
        spec.insert(stuck);
        let q = WitnessQuery::for_stuck(&h, e);
        prop_assert!(
            find_witness(&spec.index(), &q).is_some(),
            "the stuck serial history witnesses its own expansion"
        );
    }

    /// Full-history queries never match stuck serial histories and vice
    /// versa: the Pending outcome keys the groups apart, so the sets A and
    /// B of Fig. 5 need no explicit separation.
    #[test]
    fn full_and_stuck_groups_are_disjoint(s in serial_history_strategy()) {
        let mut stuck = s.clone();
        stuck.ops.last_mut().unwrap().outcome = Outcome::Pending;
        let mut spec = ObservationSet::new();
        spec.insert(stuck);
        // The complete history's query cannot find the stuck entry.
        let h = overlap(&s, &[]);
        let q = WitnessQuery::for_full(&h);
        prop_assert!(find_witness(&spec.index(), &q).is_none());
    }
}

proptest! {
    // Model-executing properties are expensive: few cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A known-correct component never fails Check, for random small test
    /// matrices (no false alarms — the practical face of Theorem 5).
    #[test]
    fn correct_counter_never_fails_random_tests(
        cells in prop::collection::vec(0usize..2, 4)
    ) {
        let inv = |i: usize| {
            if i == 0 { Invocation::new("inc") } else { Invocation::new("get") }
        };
        let m = TestMatrix::from_columns(vec![
            vec![inv(cells[0]), inv(cells[1])],
            vec![inv(cells[2]), inv(cells[3])],
        ]);
        let report = check(&CounterTarget, &m, &CheckOptions::new());
        prop_assert!(report.passed(), "violations: {:?}", report.violations);
    }
}
