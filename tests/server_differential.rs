//! Differential tests for the online monitoring service: a shard running
//! windowed history GC — at aggressively small window targets — must
//! deliver exactly the verdict one offline monitor reaches on the whole
//! stream, for every ADT kind and every history shape (unambiguous,
//! ambiguous, violating, and pending). Plus a multi-client TCP smoke
//! test exercising the socket front end and the wire `Shutdown` record.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lineup::{AdtKind, Event, History};
use lineup_bench::histories::{
    ambiguous_history, pending_history, unambiguous_history, violating_history,
};
use lineup_monitor::{ideal_oracle, Monitor};
use lineup_server::{Server, ServerConfig, Shard, ShardConfig};
use lineup_wire::{encode_record, Record, VERSION};

/// Replays `h`'s exact event interleaving into a fresh shard and ends
/// the object, returning the shard for verdict and counter inspection.
fn replay_into_shard(kind: AdtKind, h: &History, stuck: bool, window_target: usize) -> Shard {
    let mut shard = Shard::new(
        Some(kind),
        h.thread_count as u32,
        &ShardConfig { window_target },
    );
    for ev in &h.events {
        match *ev {
            Event::Call(i) => shard
                .call(
                    h.ops[i].thread as u32,
                    &h.ops[i].invocation.name,
                    h.ops[i].invocation.args.clone(),
                )
                .unwrap(),
            Event::Return(i) => shard
                .ret(h.ops[i].thread as u32, h.ops[i].response.clone().unwrap())
                .unwrap(),
        }
    }
    shard.end(stuck);
    shard
}

/// The offline verdict on the whole history against the same ideal
/// oracle: `Some(violated)`, or `None` when there is nothing to check
/// (pending calls, but the producer never declared the object stuck).
fn offline_verdict(kind: AdtKind, h: &History, stuck: bool) -> Option<bool> {
    let monitor = Monitor::new(ideal_oracle(kind)).with_adt_kind(kind);
    if h.is_complete() {
        Some(!monitor.check_full(h, &[]))
    } else if stuck {
        let mut hs = h.clone();
        hs.stuck = true;
        Some(
            hs.pending_ops()
                .iter()
                .any(|&p| !monitor.check_stuck(&hs, p, &[])),
        )
    } else {
        None
    }
}

#[test]
fn windowed_verdicts_match_offline_across_generators() {
    type Gen = fn(AdtKind, usize, u64) -> History;
    let generators: [(&str, Gen, bool); 3] = [
        ("unambiguous", unambiguous_history, false),
        ("ambiguous", ambiguous_history, false),
        ("violating", violating_history, true),
    ];
    for kind in AdtKind::ALL {
        for (name, generate, expect_violation) in generators {
            for seed in [1u64, 7, 23] {
                let h = generate(kind, 120, seed);
                let offline = offline_verdict(kind, &h, false).expect("complete history");
                assert_eq!(
                    offline, expect_violation,
                    "{kind}/{name} seed {seed}: generator sanity"
                );
                for window in [1usize, 2, 7, 32, 1000] {
                    let shard = replay_into_shard(kind, &h, false, window);
                    assert_eq!(
                        shard.violated(),
                        offline,
                        "{kind}/{name} seed {seed} window {window}: \
                         server and offline verdicts diverge"
                    );
                }
            }
        }
    }
}

#[test]
fn gc_closes_windows_while_verdicts_match() {
    for kind in AdtKind::ALL {
        let h = unambiguous_history(kind, 400, 11);
        let shard = replay_into_shard(kind, &h, false, 4);
        assert!(!shard.violated(), "{kind}: false violation");
        if kind == AdtKind::Stack {
            // A stack window whose surviving pushes overlap has an
            // ambiguous end state (LIFO order depends on the chosen
            // linearization), so the shard correctly holds such windows
            // open instead of guessing. Assert the hold path ran rather
            // than demanding closes it must not perform.
            assert!(
                shard.counters.windows_held >= 1,
                "{kind}: ambiguous windows were never held"
            );
            continue;
        }
        // The point of the test: the verdict above was reached *with*
        // GC actually discarding checked windows, not by buffering the
        // whole stream.
        assert!(
            shard.counters.windows_closed >= 2,
            "{kind}: GC never ran (windows_closed = {})",
            shard.counters.windows_closed
        );
        assert!(
            shard.counters.peak_window_ops < h.ops.len(),
            "{kind}: the whole stream was buffered"
        );
    }
}

#[test]
fn pending_windows_are_held_open_and_match_offline() {
    for kind in AdtKind::ALL {
        for seed in [3u64, 9] {
            let h = pending_history(kind, 80, seed);
            assert!(!h.is_complete(), "{kind}: generator sanity");

            // Producer vanished without declaring the object stuck:
            // there is no verdict in the truncated tail — on either
            // side — and the shard must not invent one.
            let shard = replay_into_shard(kind, &h, false, 4);
            assert_eq!(offline_verdict(kind, &h, false), None);
            assert!(!shard.violated(), "{kind} seed {seed}: phantom verdict");
            assert_eq!(shard.counters.incomplete, 1, "{kind} seed {seed}");

            // Producer declared it stuck: both sides must check the
            // stuck history and agree (ideal oracles never block, so
            // this is always a violation).
            let shard = replay_into_shard(kind, &h, true, 4);
            let offline = offline_verdict(kind, &h, true).expect("stuck verdict");
            assert_eq!(
                shard.violated(),
                offline,
                "{kind} seed {seed}: stuck verdicts diverge"
            );
            assert!(shard.counters.stuck_checks >= 1, "{kind} seed {seed}");
        }
    }
}

/// Serializes one history as wire records onto `out` (register, the
/// exact event interleaving, object end).
fn append_history(out: &mut Vec<u8>, object: u64, kind: AdtKind, h: &History, stuck: bool) {
    encode_record(
        &Record::ObjectRegister {
            object,
            kind: Some(kind),
            threads: h.thread_count as u32,
        },
        out,
    );
    for ev in &h.events {
        match *ev {
            Event::Call(i) => encode_record(
                &Record::Call {
                    object,
                    thread: h.ops[i].thread as u32,
                    ts: 0,
                    name: &h.ops[i].invocation.name,
                    args: h.ops[i].invocation.args.clone(),
                },
                out,
            ),
            Event::Return(i) => encode_record(
                &Record::Return {
                    object,
                    thread: h.ops[i].thread as u32,
                    ts: 0,
                    value: h.ops[i].response.clone().expect("complete op"),
                },
                out,
            ),
        }
    }
    encode_record(&Record::ObjectEnd { object, stuck }, out);
}

#[test]
fn multi_client_tcp_smoke_with_shutdown() {
    let server = Server::spawn(ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp address");
    let engine = Arc::clone(server.engine());

    let kinds = [AdtKind::Queue, AdtKind::Stack, AdtKind::Set];
    let mut clients = Vec::new();
    for (i, kind) in kinds.into_iter().enumerate() {
        clients.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            encode_record(&Record::Hello { version: VERSION }, &mut out);
            append_history(
                &mut out,
                1,
                kind,
                &unambiguous_history(kind, 60, i as u64 + 1),
                false,
            );
            if i == 0 {
                // One client also streams a known-violating object.
                append_history(&mut out, 2, kind, &violating_history(kind, 60, 99), false);
            }
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(&out).expect("stream history");
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // Wait for the server to drain all four objects, then stop it the
    // way a real producer would: with a wire `Shutdown` record.
    let deadline = Instant::now() + Duration::from_secs(60);
    while engine.snapshot().objects_finished < 4 {
        assert!(Instant::now() < deadline, "drain timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut out = Vec::new();
    encode_record(&Record::Hello { version: VERSION }, &mut out);
    encode_record(&Record::Shutdown, &mut out);
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    stream.write_all(&out).expect("send shutdown");
    drop(stream);
    server.join();

    let snap = engine.snapshot();
    assert_eq!(snap.objects_finished, 4);
    assert_eq!(snap.counters.violations, 1, "exactly the seeded violation");
    assert_eq!(snap.connections, 4);
    assert_eq!(snap.protocol_errors, 0);
    assert_eq!(snap.buffered_ops, 0, "everything GC'd after drain");
}
