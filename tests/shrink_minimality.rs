//! `shrink_failing_test` produces a *locally minimal* failing test on a
//! seeded bug: the shrunk matrix still fails, and removing any single
//! remaining operation makes the check pass (the paper's "failing test of
//! minimal dimension", §5.1, automated).

use lineup::{CheckOptions, Invocation, TestMatrix};
use lineup_collections::registry::all_classes;

#[test]
fn shrink_is_locally_minimal_on_the_seeded_queue() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry has the seeded queue");
    // The regression matrix padded with a redundant dequeue: shrink must
    // strip the padding (at least) and land on a locally minimal test.
    let big = TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 200),
            Invocation::with_int("Enqueue", 400),
        ],
        vec![
            Invocation::new("TryDequeue"),
            Invocation::new("TryDequeue"),
            Invocation::new("TryDequeue"),
        ],
    ]);
    let opts = CheckOptions::new();
    assert!(
        !entry.target().check(&big, &opts).passed(),
        "padded matrix still exposes the seeded bug"
    );

    let (small, checks) = entry.target().shrink_failing_test(&big, &opts);
    assert!(checks > 1, "shrinking performed candidate checks");
    assert!(
        small.operation_count() < big.operation_count(),
        "the redundant padding is removed:\n{small}"
    );
    assert!(
        !entry.target().check(&small, &opts).passed(),
        "the shrunk test is a genuine failing test:\n{small}"
    );

    // Local minimality: no single operation can be removed without the
    // check passing.
    for c in 0..small.columns.len() {
        for r in 0..small.columns[c].len() {
            let mut candidate = small.clone();
            candidate.columns[c].remove(r);
            candidate.columns.retain(|col| !col.is_empty());
            if candidate.operation_count() == 0 {
                continue;
            }
            assert!(
                entry.target().check(&candidate, &opts).passed(),
                "removing op ({c},{r}) still fails — not minimal:\n{candidate}"
            );
        }
    }
}
