//! Differential suite for the specialized log-linear monitors: on the
//! same history and the same ideal oracle, a kind-annotated
//! [`Monitor`] (specialized path with automatic Wing–Gong fallback)
//! must return exactly the verdict of a plain monitor (Wing–Gong
//! always), and its per-path counters must show which path ran.
//!
//! Three history families (see `lineup_bench::histories`):
//! unambiguous (specialized path must decide, no fallback), ambiguous
//! (must provably fall back — `DuplicateValue` — with no verdict
//! change), and response-mutated (verdicts must still agree, whichever
//! path decides). Plus targeted regressions: empty-dequeue on empty vs
//! non-empty queues, and duplicate values forcing fallback.

use proptest::prelude::*;

use lineup::{AdtKind, FallbackReason, History, Invocation, Value};
use lineup_bench::histories::{
    ambiguous_history, ideal_oracle, pending_history, unambiguous_history, violating_history,
    IdealStep,
};
use lineup_monitor::{FnOracle, Monitor};

type IdealMonitor = Monitor<FnOracle<Vec<i64>, IdealStep>>;

fn specialized_monitor(kind: AdtKind) -> IdealMonitor {
    Monitor::new(ideal_oracle(kind)).with_adt_kind(kind)
}

fn general_monitor(kind: AdtKind) -> IdealMonitor {
    Monitor::new(ideal_oracle(kind))
}

/// Names of the insert/remove methods of each kind's alphabet.
fn method_names(kind: AdtKind) -> (&'static str, &'static str) {
    match kind {
        AdtKind::Queue => ("Enqueue", "TryDequeue"),
        AdtKind::Stack => ("Push", "TryPop"),
        AdtKind::PriorityQueue => ("Insert", "ExtractMin"),
        AdtKind::Set => ("TryAdd", "TryRemove"),
    }
}

/// Corrupts one response in-place, staying inside each kind's alphabet
/// (for sets, successful-remove payloads stay the pure function of the
/// key that the specialized checker assumes). Picks deterministically
/// from `pick`/`alt` so proptest can shrink.
fn mutate_response(h: &mut History, kind: AdtKind, pick: usize, alt: usize, to_fail: bool) {
    if kind == AdtKind::Set {
        let i = pick % h.ops.len();
        let op = &h.ops[i];
        let Some(&Value::Int(k)) = op.invocation.args.first() else {
            return;
        };
        let new = match (op.invocation.name.as_str(), op.response.as_ref()) {
            ("TryAdd" | "ContainsKey", Some(Value::Bool(b))) => Value::Bool(!b),
            ("TryRemove", Some(Value::Opt(Some(_)))) => Value::Fail,
            ("TryRemove", Some(Value::Fail)) => Value::some(Value::int(k)),
            _ => return,
        };
        h.ops[i].response = Some(new);
        return;
    }
    let (ins, rem) = method_names(kind);
    let removals: Vec<usize> = (0..h.ops.len())
        .filter(|&i| h.ops[i].invocation.name == rem)
        .collect();
    if removals.is_empty() {
        return;
    }
    let i = removals[pick % removals.len()];
    let inserted: Vec<i64> = h
        .ops
        .iter()
        .filter(|o| o.invocation.name == ins)
        .filter_map(|o| match o.invocation.args.first() {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        })
        .collect();
    let new = if to_fail || inserted.is_empty() {
        Value::Fail
    } else {
        Value::some(Value::int(inserted[alt % inserted.len()]))
    };
    h.ops[i].response = Some(new);
}

fn kind_strategy() -> impl Strategy<Value = AdtKind> {
    (0usize..AdtKind::ALL.len()).prop_map(|i| AdtKind::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unambiguous histories: the specialized path decides (no fallback)
    /// and agrees with the full Wing–Gong search.
    #[test]
    fn specialized_agrees_on_unambiguous_histories(
        kind in kind_strategy(),
        ops in 20usize..120,
        seed in 0u64..1 << 32,
    ) {
        let h = unambiguous_history(kind, ops, seed);
        let spec = specialized_monitor(kind);
        let gen = general_monitor(kind);
        let sv = spec.check_full(&h, &[]);
        let gv = gen.check_full(&h, &[]);
        prop_assert!(gv, "generated history must be linearizable");
        prop_assert_eq!(sv, gv);
        let paths = spec.stats().paths;
        prop_assert_eq!(paths.specialized_checks, 1);
        prop_assert_eq!(paths.fallback_checks, 0);
    }

    /// Randomly corrupted responses: whichever path decides, the verdict
    /// matches Wing–Gong's.
    #[test]
    fn specialized_agrees_on_mutated_histories(
        kind in kind_strategy(),
        // Kept small: a corrupted history usually rejects, and the
        // reference Wing–Gong search is exhaustive on rejection.
        ops in 12usize..40,
        seed in 0u64..1 << 32,
        mutations in prop::collection::vec(
            (any::<usize>(), any::<usize>(), any::<bool>()), 1..4),
    ) {
        let mut h = unambiguous_history(kind, ops, seed);
        for (pick, alt, to_fail) in mutations {
            mutate_response(&mut h, kind, pick, alt, to_fail);
        }
        let spec = specialized_monitor(kind);
        let gen = general_monitor(kind);
        prop_assert_eq!(spec.check_full(&h, &[]), gen.check_full(&h, &[]));
    }

    /// Ambiguous histories (repeated values): the specialized path
    /// provably falls back with `DuplicateValue`, and the Wing–Gong
    /// fallback still accepts, so annotation changes no verdict.
    #[test]
    fn ambiguous_histories_take_the_fallback(
        kind in kind_strategy(),
        ops in 20usize..80,
        seed in 0u64..1 << 32,
    ) {
        let h = ambiguous_history(kind, ops, seed);
        let spec = specialized_monitor(kind);
        let gen = general_monitor(kind);
        let sv = spec.check_full(&h, &[]);
        prop_assert!(sv, "generated ambiguous history must be linearizable");
        prop_assert_eq!(sv, gen.check_full(&h, &[]));
        let paths = spec.stats().paths;
        prop_assert_eq!(paths.specialized_checks, 0);
        prop_assert_eq!(paths.fallback_checks, 1);
        prop_assert_eq!(paths.fallbacks_for(FallbackReason::DuplicateValue), 1);
    }

    /// A removal of a never-inserted value: both paths reject.
    #[test]
    fn violating_histories_reject_on_both_paths(
        kind in kind_strategy(),
        // Kept small: rejection makes the reference search exhaustive.
        ops in 10usize..28,
        seed in 0u64..1 << 32,
    ) {
        let h = violating_history(kind, ops, seed);
        let spec = specialized_monitor(kind);
        let gen = general_monitor(kind);
        prop_assert!(!spec.check_full(&h, &[]));
        prop_assert!(!gen.check_full(&h, &[]));
    }

    /// Histories with a pending call go through `check_stuck`: the
    /// specialized path falls back (`PendingOps`) and agrees. The ideal
    /// oracles never block, so neither monitor finds a stuck witness.
    #[test]
    fn pending_histories_agree_and_fall_back(
        kind in kind_strategy(),
        // Kept small: stuck checks enumerate every reachable
        // configuration of the reference search.
        ops in 8usize..24,
        seed in 0u64..1 << 32,
    ) {
        let h = pending_history(kind, ops, seed);
        let pending = *h.pending_ops().first().expect("one pending op");
        let spec = specialized_monitor(kind);
        let gen = general_monitor(kind);
        prop_assert_eq!(
            spec.check_stuck(&h, pending, &[]),
            gen.check_stuck(&h, pending, &[])
        );
        let paths = spec.stats().paths;
        prop_assert_eq!(paths.specialized_checks, 0);
        prop_assert_eq!(paths.fallbacks_for(FallbackReason::PendingOps), 1);
    }
}

// ---------------------------------------------------------------------
// Targeted regressions
// ---------------------------------------------------------------------

/// Builds a complete history from `(thread, name, arg, response)` rows,
/// one op at a time (serial unless threads interleave via `pending`
/// rows; here all ops are serial, ordered as given).
fn serial(rows: &[(&str, Option<i64>, Value)]) -> History {
    let mut h = History::new(1);
    for (name, arg, resp) in rows {
        let inv = match arg {
            Some(v) => Invocation::with_int(*name, *v),
            None => Invocation::new(*name),
        };
        let id = h.push_call(0, inv);
        h.push_return(id, resp.clone());
    }
    h
}

#[test]
fn empty_dequeue_on_empty_queue_accepts() {
    let h = serial(&[
        ("TryDequeue", None, Value::Fail),
        ("Enqueue", Some(1), Value::Unit),
        ("TryDequeue", None, Value::some(Value::int(1))),
        ("TryDequeue", None, Value::Fail),
    ]);
    let spec = specialized_monitor(AdtKind::Queue);
    assert!(spec.check_full(&h, &[]));
    assert_eq!(spec.stats().paths.specialized_checks, 1);
    assert!(general_monitor(AdtKind::Queue).check_full(&h, &[]));
}

#[test]
fn empty_dequeue_on_nonempty_queue_rejects() {
    // The failed dequeue runs strictly inside value 1's presence window.
    let h = serial(&[
        ("Enqueue", Some(1), Value::Unit),
        ("TryDequeue", None, Value::Fail),
        ("TryDequeue", None, Value::some(Value::int(1))),
    ]);
    let spec = specialized_monitor(AdtKind::Queue);
    assert!(!spec.check_full(&h, &[]));
    assert_eq!(spec.stats().paths.specialized_checks, 1);
    assert!(!general_monitor(AdtKind::Queue).check_full(&h, &[]));
}

#[test]
fn duplicate_enqueue_forces_fallback_without_verdict_change() {
    let h = serial(&[
        ("Enqueue", Some(7), Value::Unit),
        ("Enqueue", Some(7), Value::Unit),
        ("TryDequeue", None, Value::some(Value::int(7))),
        ("TryDequeue", None, Value::some(Value::int(7))),
    ]);
    let spec = specialized_monitor(AdtKind::Queue);
    assert!(spec.check_full(&h, &[]));
    let paths = spec.stats().paths;
    assert_eq!(paths.specialized_checks, 0);
    assert_eq!(paths.fallbacks_for(FallbackReason::DuplicateValue), 1);
    assert!(general_monitor(AdtKind::Queue).check_full(&h, &[]));
}

#[test]
fn unknown_method_forces_fallback() {
    let h = serial(&[
        ("Enqueue", Some(1), Value::Unit),
        ("Count", None, Value::int(1)),
        ("TryDequeue", None, Value::some(Value::int(1))),
    ]);
    // The ideal queue oracle panics on `Count`, so give the fallback
    // (Wing–Gong) an oracle that knows `Count` too; only the dispatch
    // decision is under test here.
    let oracle = FnOracle::new(Vec::<i64>::new(), |s: &Vec<i64>, inv: &Invocation| {
        if inv.name == "Count" {
            lineup_monitor::StepResult::Returns(Value::int(s.len() as i64), s.clone())
        } else {
            lineup_bench::histories::ideal_step(AdtKind::Queue)(s, inv)
        }
    });
    let spec = Monitor::new(oracle).with_adt_kind(AdtKind::Queue);
    assert!(spec.check_full(&h, &[]));
    let paths = spec.stats().paths;
    assert_eq!(paths.specialized_checks, 0);
    assert_eq!(paths.fallbacks_for(FallbackReason::UnknownOp), 1);
}

#[test]
fn unregistered_kind_always_falls_back() {
    let h = serial(&[
        ("Enqueue", Some(1), Value::Unit),
        ("TryDequeue", None, Value::some(Value::int(1))),
    ]);
    let gen = general_monitor(AdtKind::Queue);
    assert!(gen.check_full(&h, &[]));
    let paths = gen.stats().paths;
    assert_eq!(paths.specialized_checks, 0);
    assert_eq!(paths.fallbacks_for(FallbackReason::Unregistered), 1);
}

#[test]
fn fifo_overtaking_rejects_through_dispatch() {
    // enq 1 completes before enq 2 starts, yet 2 is dequeued first by an
    // op that finishes before 1's dequeue begins.
    let mut h = History::new(2);
    let e1 = h.push_call(0, Invocation::with_int("Enqueue", 1));
    h.push_return(e1, Value::Unit);
    let e2 = h.push_call(0, Invocation::with_int("Enqueue", 2));
    h.push_return(e2, Value::Unit);
    let d2 = h.push_call(1, Invocation::new("TryDequeue"));
    h.push_return(d2, Value::some(Value::int(2)));
    let d1 = h.push_call(1, Invocation::new("TryDequeue"));
    h.push_return(d1, Value::some(Value::int(1)));
    let spec = specialized_monitor(AdtKind::Queue);
    assert!(!spec.check_full(&h, &[]));
    assert_eq!(spec.stats().paths.specialized_checks, 1);
    assert!(!general_monitor(AdtKind::Queue).check_full(&h, &[]));
}
