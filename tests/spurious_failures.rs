//! Integration tests for the spurious-failure extension — the paper's
//! future-work item on "nondeterministic methods, such as methods that
//! may fail on interference" (§6). Declaring a method spurious accepts
//! its `Fail` responses whenever the operation overlaps another one,
//! which encodes the documentation fix the .NET developers chose for the
//! intentional root causes I and J (§5.2.2).

use lineup::{CheckOptions, Invocation, TestMatrix};
use lineup_collections::all_classes;

fn inv(name: &str) -> Invocation {
    Invocation::new(name)
}
fn inv_i(name: &str, x: i64) -> Invocation {
    Invocation::with_int(name, x)
}

/// Root cause J (BlockingCollection.TryTake fails on a non-empty
/// collection): a violation by default, accepted once TryTake is declared
/// nondeterministic-under-interference — exactly the .NET documentation
/// change.
#[test]
fn blocking_collection_j_accepted_when_declared() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "BlockingCollection")
        .unwrap();
    let m = TestMatrix::from_columns(vec![
        vec![inv("TryTake")],
        vec![inv("Take"), inv_i("Add", 30), inv("Take")],
    ])
    .with_init(vec![inv_i("Add", 10), inv_i("Add", 20)]);

    let strict = CheckOptions::new();
    assert!(
        !entry.target().check(&m, &strict).passed(),
        "strict checking flags root cause J"
    );

    let documented = CheckOptions::new().with_spurious_failures(["TryTake"]);
    let report = entry.target().check(&m, &documented);
    assert!(
        report.passed(),
        "declared spurious TryTake is accepted: {:?}",
        report.violations
    );
}

/// Root cause H (bag TryTake "may remove any one of the elements") is
/// *beyond* the spurious-failure extension: the violating history has a
/// TryTake that *succeeds* with an out-of-order element, not one that
/// fails — so the declaration (which only excuses overlapping `Fail`
/// responses) correctly leaves it flagged. Fully supporting such methods
/// is the remaining future-work item of §6.
#[test]
fn bag_take_order_nondeterminism_is_beyond_the_extension() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentBag")
        .unwrap();
    let m = entry.regression_matrix().unwrap();
    assert!(!entry.target().check(&m, &CheckOptions::new()).passed());
    let documented = CheckOptions::new().with_spurious_failures(["TryTake"]);
    let report = entry.target().check(&m, &documented);
    assert!(
        !report.passed(),
        "a successful out-of-order take is not a spurious failure"
    );
    // The violation indeed involves a successful TryTake, not a Fail.
    match report.first_violation().unwrap() {
        lineup::Violation::NoWitness { history, .. } => {
            assert!(history.ops.iter().any(|o| {
                o.invocation.name == "TryTake"
                    && o.response
                        .as_ref()
                        .is_some_and(|r| *r != lineup::Value::Fail)
            }));
        }
        other => panic!("unexpected violation {other:?}"),
    }
}

/// The declaration is narrow: it only excuses *overlapping failed*
/// responses of the listed methods. Root cause I (Count inconsistency) is
/// still flagged with TryTake declared spurious…
#[test]
fn other_root_causes_remain_flagged() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "BlockingCollection")
        .unwrap();
    let count_matrix = TestMatrix::from_columns(vec![
        vec![inv("Count")],
        vec![inv("Take"), inv_i("Add", 30), inv("Take")],
    ])
    .with_init(vec![inv_i("Add", 10), inv_i("Add", 20)]);
    let documented = CheckOptions::new().with_spurious_failures(["TryTake"]);
    assert!(
        !entry.target().check(&count_matrix, &documented).passed(),
        "root cause I does not involve a TryTake failure"
    );
}

/// …and a *non-overlapping* spurious failure is still a violation: a
/// TryTake that runs alone and fails on a provably non-empty collection
/// has no interference to blame.
#[test]
fn sequential_failures_are_not_excused() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .unwrap();
    // The Fig. 1 timeout needs lock contention, i.e. overlap — so with
    // TryTake declared spurious even the preview queue passes Fig. 1
    // (this is exactly the semantics the extension implements).
    let fig1 = entry.regression_matrix().unwrap();
    let documented = CheckOptions::new().with_spurious_failures(["TryDequeue", "TryTake"]);
    assert!(entry.target().check(&fig1, &documented).passed());

    // But the fixed queue checked strictly still passes, and the preview
    // queue checked strictly still fails: the knob changes nothing unless
    // explicitly enabled.
    assert!(!entry.target().check(&fig1, &CheckOptions::new()).passed());
}

/// Declaring an unrelated method is a no-op.
#[test]
fn unrelated_declarations_change_nothing() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .unwrap();
    let fig1 = entry.regression_matrix().unwrap();
    let unrelated = CheckOptions::new().with_spurious_failures(["TryPeek"]);
    assert!(!entry.target().check(&fig1, &unrelated).passed());
}

/// Root cause K (CompleteAdding's effects land after return) is the §6
/// "asynchronous methods" future-work item: declaring CompleteAdding
/// asynchronous accepts the late effect, while the strict check flags it.
#[test]
fn complete_adding_accepted_when_declared_async() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "BlockingCollection")
        .unwrap();
    let m = TestMatrix::from_columns(vec![
        vec![inv("CompleteAdding")],
        vec![inv_i("TryAdd", 10)],
        vec![inv_i("TryAdd", 20)],
    ]);
    assert!(
        !entry.target().check(&m, &CheckOptions::new()).passed(),
        "strict checking flags root cause K"
    );
    let relaxed = CheckOptions::new().with_async_methods(["CompleteAdding"]);
    let report = entry.target().check(&m, &relaxed);
    assert!(
        report.passed(),
        "async declaration accepts the late effect: {:?}",
        report.violations
    );
}

/// The async declaration is per-method: it does not excuse unrelated
/// safety bugs.
#[test]
fn async_declaration_does_not_mask_other_bugs() {
    let entry = all_classes()
        .into_iter()
        .find(|e| e.name == "ConcurrentDictionary (Pre)")
        .unwrap();
    let m = entry.regression_matrix().unwrap();
    let relaxed = CheckOptions::new().with_async_methods(["CompleteAdding"]);
    assert!(!entry.target().check(&m, &relaxed).passed());
}
