//! Work-stealing phase 2 is observationally equivalent to the serial
//! checker (ISSUE acceptance): across 1, 2, and 4 workers, with POR on or
//! off, on either execution backend, and under preemption bounds, the
//! verdicts, the violation lists, and the distinct-history counts must
//! match the serial exploration — with *zero* eager frontier replays and
//! lazy steal replays bounded by the number of claimed steals.
//!
//! Determinism tiers:
//!
//! * **POR off** — work stealing partitions the schedule tree exactly
//!   (every schedule runs exactly once, whatever the steal timing), so
//!   the comparison is byte-identical: violation order *and* reproducing
//!   decisions, run counts, step counts.
//! * **POR on** — a split promotes the victim's sleep-set nodes to full
//!   exploration so the shipped sleep masks stay sound; which nodes get
//!   promoted depends on steal timing, so run counts may exceed the
//!   serial reduced count (never the unreduced one). The *distinct
//!   history sets* — and with them verdicts and the set of violating
//!   histories — are still exactly the serial ones.

use lineup::{Backend, CheckOptions, TestMatrix, Violation};
use lineup_collections::registry::{all_classes, ClassEntry};

/// Renders the full violation list, decisions included, for the
/// byte-identical (POR-off) comparisons.
fn rendered(violations: &[Violation]) -> Vec<String> {
    violations.iter().map(|v| format!("{v:?}")).collect()
}

/// Renders a violation without its reproducing `decisions` and sorts, for
/// the POR-on comparisons where encounter order may legitimately differ.
fn sorted_keys(violations: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = violations
        .iter()
        .map(|v| match v {
            Violation::Nondeterminism(nd) => format!("nondeterminism: {nd:?}"),
            Violation::NoWitness { history, .. } => format!("no-witness: {history:?}"),
            Violation::StuckNoWitness {
                history, pending, ..
            } => format!("stuck-no-witness: {pending:?} {history:?}"),
            Violation::Panic {
                message, history, ..
            } => format!("panic: {message} {history:?}"),
        })
        .collect();
    keys.sort();
    keys
}

/// A small matrix exercising `entry`: its own regression matrix when it
/// has one, else the seeded sibling's (same component, same methods),
/// else a minimal two-column test from the target's catalog.
fn matrix_for(entry: &ClassEntry, all: &[ClassEntry]) -> TestMatrix {
    if entry.name == "ConcurrentBag" {
        // The bag's `TryTake` scans every per-thread list; keep the
        // POR-off baseline finite by comparing on concurrent `Add`s.
        return TestMatrix::from_columns(vec![
            vec![lineup::Invocation::with_int("Add", 10)],
            vec![lineup::Invocation::with_int("Add", 20)],
        ]);
    }
    if let Some(m) = entry.regression_matrix() {
        return m;
    }
    let pre = format!("{} (Pre)", entry.name);
    if let Some(m) = all
        .iter()
        .find(|e| e.name == pre)
        .and_then(|e| e.regression_matrix())
    {
        return m;
    }
    let invs = entry.target().invocations();
    let a = invs[0].clone();
    let b = invs.get(1).cloned().unwrap_or_else(|| invs[0].clone());
    TestMatrix::from_columns(vec![vec![a.clone(), b.clone()], vec![b, a]])
}

/// Shrinks a matrix so the exhaustive exploration stays feasible in a
/// debug-build test: at most two columns of at most two operations.
fn small(mut m: TestMatrix) -> TestMatrix {
    m.columns.truncate(2);
    if let Some(c) = m.columns.first_mut() {
        c.truncate(2);
    }
    if let Some(c) = m.columns.get_mut(1) {
        c.truncate(1);
    }
    m.finally.truncate(1);
    m
}

fn exhaustive(por: bool, backend: Backend) -> CheckOptions {
    CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .with_backend(backend)
        .collect_all_violations()
}

/// Asserts the steal-accounting invariants every parallel report must
/// satisfy: no eager frontier replays, lazy replays bounded by claimed
/// steals, claimed steals bounded by split subtrees.
fn assert_steal_invariants(name: &str, report: &lineup::CheckReport) {
    assert_eq!(
        report.phase2.frontier_replays, 0,
        "{name}: no eager prefix re-execution under work stealing"
    );
    assert!(
        report.phase2.steal_replays <= report.phase2.steals,
        "{name}: replays only for claimed steals ({} <= {})",
        report.phase2.steal_replays,
        report.phase2.steals,
    );
    assert!(
        report.phase2.steals <= report.phase2.splits,
        "{name}: every claimed steal was split off first ({} <= {})",
        report.phase2.steals,
        report.phase2.splits,
    );
}

#[test]
fn por_off_is_byte_identical_across_worker_counts_on_every_class() {
    let all = all_classes();
    for entry in &all {
        let matrix = small(matrix_for(entry, &all));
        let opts = exhaustive(false, Backend::OsThreads);
        let serial = entry.target().check(&matrix, &opts);
        for workers in [2, 4] {
            let par = entry.target().check(
                &matrix,
                // Probe disabled so the stealing machinery is exercised
                // even on matrices below the auto-serial threshold.
                &opts
                    .clone()
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            let name = format!("{} at {workers} workers", entry.name);
            assert_eq!(serial.passed(), par.passed(), "{name}: verdict");
            assert_eq!(
                rendered(&serial.violations),
                rendered(&par.violations),
                "{name}: violation lists (order and decisions included)"
            );
            assert_eq!(
                serial.phase2.runs, par.phase2.runs,
                "{name}: every schedule runs exactly once"
            );
            assert_eq!(
                serial.phase2.total_steps, par.phase2.total_steps,
                "{name}: step counts"
            );
            assert_eq!(
                serial.phase2.full_histories, par.phase2.full_histories,
                "{name}: distinct full histories"
            );
            assert_eq!(
                serial.phase2.stuck_histories, par.phase2.stuck_histories,
                "{name}: distinct stuck histories"
            );
            assert_steal_invariants(&name, &par);
        }
    }
}

#[test]
fn por_off_is_byte_identical_on_the_fiber_backend() {
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        let opts = exhaustive(false, Backend::Fibers);
        let serial = entry.target().check(&matrix, &opts);
        for workers in [2, 4] {
            let par = entry.target().check(
                &matrix,
                &opts
                    .clone()
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            let name = format!("{} (fibers) at {workers} workers", entry.name);
            assert_eq!(
                rendered(&serial.violations),
                rendered(&par.violations),
                "{name}: violation lists"
            );
            assert_eq!(serial.phase2.runs, par.phase2.runs, "{name}: runs");
            assert_steal_invariants(&name, &par);
        }
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn por_on_matches_serial_history_sets_across_worker_counts() {
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        let reduced = entry
            .target()
            .check(&matrix, &exhaustive(true, Backend::OsThreads));
        let unreduced = entry
            .target()
            .check(&matrix, &exhaustive(false, Backend::OsThreads));
        for workers in [2, 4] {
            let par = entry.target().check(
                &matrix,
                &exhaustive(true, Backend::OsThreads)
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            let name = format!("{} (POR) at {workers} workers", entry.name);
            assert_eq!(reduced.passed(), par.passed(), "{name}: verdict");
            assert_eq!(
                sorted_keys(&reduced.violations),
                sorted_keys(&par.violations),
                "{name}: violating histories"
            );
            assert_eq!(
                reduced.phase2.full_histories, par.phase2.full_histories,
                "{name}: distinct full histories"
            );
            assert_eq!(
                reduced.phase2.stuck_histories, par.phase2.stuck_histories,
                "{name}: distinct stuck histories"
            );
            // Split promotion can only widen the exploration, and never
            // past the unreduced enumeration.
            assert!(
                par.phase2.runs <= unreduced.phase2.runs,
                "{name}: {} <= {}",
                par.phase2.runs,
                unreduced.phase2.runs,
            );
            assert_steal_invariants(&name, &par);
        }
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn preemption_bounded_stealing_is_byte_identical() {
    // A preemption bound disengages POR (sleep sets are unsound under
    // it), so bounded parallel exploration is in the byte-identical tier
    // at any bound.
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let matrix = small(matrix_for(entry, &all));
        for bound in [1, 2] {
            let opts = CheckOptions::new()
                .with_preemption_bound(Some(bound))
                .collect_all_violations();
            let serial = entry.target().check(&matrix, &opts);
            let par = entry.target().check(
                &matrix,
                &opts.clone().with_workers(4).with_parallel_probe_runs(0),
            );
            let name = format!("{} at bound {bound}", entry.name);
            assert_eq!(
                rendered(&serial.violations),
                rendered(&par.violations),
                "{name}: violation lists"
            );
            assert_eq!(serial.phase2.runs, par.phase2.runs, "{name}: runs");
            assert_steal_invariants(&name, &par);
        }
        checked += 1;
    }
    assert!(checked >= 5, "expected the seeded variants, got {checked}");
}

#[test]
fn stop_at_first_reports_the_serial_winner() {
    // Stop-at-first under work stealing: whichever worker finds a
    // violation first in wall-clock time, the *reported* one must be the
    // lexicographically least violating schedule — the one the serial
    // DFS stops at — because lex-smaller subtrees are never cancelled.
    let all = all_classes();
    let mut checked = 0;
    for entry in all.iter().filter(|e| e.name.ends_with("(Pre)")) {
        let Some(matrix) = entry.regression_matrix() else {
            continue;
        };
        let opts = CheckOptions::new()
            .with_preemption_bound(None)
            .with_por(false);
        let serial = entry.target().check(&matrix, &opts);
        assert!(
            !serial.passed(),
            "{}: seeded bug found serially",
            entry.name
        );
        for workers in [2, 4] {
            let par = entry.target().check(
                &matrix,
                &opts
                    .clone()
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            assert_eq!(
                rendered(&serial.violations),
                rendered(&par.violations),
                "{} at {workers} workers: the serial winner (decisions included)",
                entry.name
            );
        }
        checked += 1;
    }
    assert!(checked >= 3, "expected seeded variants, got {checked}");
}
