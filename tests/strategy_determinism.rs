//! Randomized strategies are deterministic functions of their seed
//! (ISSUE 9 acceptance): a fixed-seed Coverage or PCT campaign must
//! produce the *byte-identical sequence of runs* — same decision
//! vectors, same outcomes, same recorded histories, same final
//! statistics — across repeat invocations and across the fiber and
//! OS-thread execution backends. Without this, "re-run with seed 42"
//! would not reproduce a reported violation, and the coverage corpus
//! (whose evolution feeds back into the schedule choices) would drift
//! between a debugging session and the CI run that found the bug.
//!
//! On targets without fiber support `Backend::Fibers` degrades to OS
//! threads and the cross-backend comparisons hold trivially.

use std::ops::ControlFlow;

use lineup::{explore_matrix, History, TestMatrix};
use lineup_collections::concurrent_queue::{fig1_matrix, ConcurrentQueueTarget};
use lineup_collections::registry::Variant;
use lineup_sched::{Backend, Config};

/// Budget small enough for a debug-build test, large enough that the
/// coverage strategy's corpus fills and mutated runs dominate (the
/// feedback loop, not just the seed, is what must stay deterministic).
const RUNS: u64 = 300;

/// One run, fully rendered: decision indexes, outcome, and the recorded
/// history. The whole campaign is the sequence of these.
type RunTrace = Vec<(Vec<usize>, String, History)>;

fn campaign(config: &Config) -> (RunTrace, String) {
    let target = ConcurrentQueueTarget {
        variant: Variant::Pre,
    };
    let matrix: TestMatrix = fig1_matrix();
    let mut runs: RunTrace = Vec::new();
    let stats = explore_matrix(&target, &matrix, config, |run| {
        runs.push((
            run.decisions.clone(),
            format!("{:?}", run.outcome),
            run.history.clone(),
        ));
        ControlFlow::Continue(())
    });
    // The stats snapshot covers every counter, including the coverage
    // corpus/bitmap gauges — `{:?}` makes the comparison total.
    (runs, format!("{stats:?}"))
}

fn assert_campaign_deterministic(name: &str, make: impl Fn() -> Config) {
    let (fib_a, stats_fib_a) = campaign(&make().with_backend(Backend::Fibers));
    let (fib_b, stats_fib_b) = campaign(&make().with_backend(Backend::Fibers));
    assert_eq!(
        fib_a, fib_b,
        "{name}: repeat invocations must replay the identical run sequence"
    );
    assert_eq!(stats_fib_a, stats_fib_b, "{name}: stats must be identical");

    let (os, stats_os) = campaign(&make().with_backend(Backend::OsThreads));
    assert_eq!(
        fib_a.len(),
        os.len(),
        "{name}: same number of runs on either backend"
    );
    for (i, (fib_run, os_run)) in fib_a.iter().zip(&os).enumerate() {
        assert_eq!(
            fib_run, os_run,
            "{name}: run {i} must be byte-identical across backends"
        );
    }
    assert_eq!(
        stats_fib_a, stats_os,
        "{name}: exploration statistics must not depend on the backend"
    );
    assert!(!fib_a.is_empty(), "{name}: the campaign must execute runs");
}

#[test]
fn coverage_campaign_is_deterministic() {
    // The coverage strategy's choices depend on the corpus, which depends
    // on every earlier run's signature — so this pins down the entire
    // feedback loop, not just the raw generator.
    assert_campaign_deterministic("coverage", || Config::coverage(42, RUNS));
}

#[test]
fn coverage_campaign_varies_with_the_seed() {
    let (a, _) = campaign(&Config::coverage(1, 50));
    let (b, _) = campaign(&Config::coverage(2, 50));
    assert_ne!(a, b, "different seeds must explore different schedules");
}

#[test]
fn pct_campaign_is_deterministic() {
    assert_campaign_deterministic("pct", || Config::pct(42, 5, RUNS));
}

#[test]
fn random_campaign_is_deterministic() {
    assert_campaign_deterministic("random", || Config::random(42, RUNS));
}
