//! Thread-symmetry reduction preserves phase-2 completeness (ISSUE
//! acceptance): pruning symmetric sibling schedules and deduplicating
//! verdicts on canonical history keys must never change a verdict. For
//! every registry class — fixed and "(Pre)" seeded variants — checking
//! with symmetry on must reach the same verdict and the same *set of
//! symmetry classes* of violating histories as checking with symmetry
//! off, with POR on or off, serially or under parallel workers, and
//! under either execution backend.
//!
//! The two modes are not byte-identical by construction: with symmetry
//! off the verdict cache keys on raw histories, so each member of a
//! symmetry class is reported separately, while with symmetry on the
//! class is reported once (through its first-encountered member, which
//! the sibling-ordering rule guarantees is also the first member the
//! unpruned search meets). The comparisons below therefore canonicalize
//! both violation lists before comparing. When a matrix has no
//! symmetric threads — or the target opts out, like `ConcurrentBag` —
//! the reports must be byte-identical.

use lineup::{Backend, CheckOptions, Invocation, SymmetryGroups, TestMatrix, Violation};
use lineup_collections::registry::{all_classes, ClassEntry};

/// Renders a violation list up to symmetry: histories are canonicalized
/// under `groups` so symmetric duplicates from the unreduced search
/// collapse onto the single representative the reduced search reports.
/// Decisions are dropped (the reduced search may reach a class through
/// an earlier schedule); the result is sorted and deduplicated.
fn canonical_keys(groups: &SymmetryGroups, violations: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = violations
        .iter()
        .map(|v| match v {
            Violation::Nondeterminism(nd) => format!("nondeterminism: {nd:?}"),
            Violation::NoWitness { history, .. } => {
                format!("no-witness: {:?}", groups.canonicalize(history))
            }
            Violation::StuckNoWitness {
                history, pending, ..
            } => format!(
                "stuck-no-witness: {pending:?} {:?}",
                groups.canonicalize(history)
            ),
            Violation::Panic {
                message, history, ..
            } => format!("panic: {message} {:?}", groups.canonicalize(history)),
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

/// A small matrix exercising `entry`: its own regression matrix when it
/// has one, else the seeded sibling's, else a minimal two-column test
/// from the target's catalog (same selection as `por_equivalence`).
fn matrix_for(entry: &ClassEntry, all: &[ClassEntry]) -> TestMatrix {
    if entry.name == "ConcurrentBag" {
        return TestMatrix::from_columns(vec![
            vec![Invocation::with_int("Add", 10)],
            vec![Invocation::with_int("Add", 20)],
        ]);
    }
    if let Some(m) = entry.regression_matrix() {
        return m;
    }
    let pre = format!("{} (Pre)", entry.name);
    if let Some(m) = all
        .iter()
        .find(|e| e.name == pre)
        .and_then(|e| e.regression_matrix())
    {
        return m;
    }
    let invs = entry.target().invocations();
    let a = invs[0].clone();
    let b = invs.get(1).cloned().unwrap_or_else(|| invs[0].clone());
    TestMatrix::from_columns(vec![vec![a.clone(), b.clone()], vec![b, a]])
}

/// Shrinks a matrix so the unreduced exhaustive baseline stays feasible
/// in a debug-build test (the reduction factors in `EXPERIMENTS.md` are
/// measured on the full matrices by the `phase2` bench instead).
fn small(mut m: TestMatrix) -> TestMatrix {
    m.columns.truncate(2);
    if let Some(c) = m.columns.first_mut() {
        c.truncate(2);
    }
    if let Some(c) = m.columns.get_mut(1) {
        c.truncate(1);
    }
    m.finally.truncate(1);
    m
}

/// Two value-symmetric producer/consumer columns: the threads differ
/// only in the enqueued literal, so `SymmetryPolicy::Full` detects one
/// two-thread group and phase-1 pruning engages.
fn symmetric_queue_matrix() -> TestMatrix {
    TestMatrix::from_columns(vec![
        vec![
            Invocation::with_int("Enqueue", 10),
            Invocation::new("TryDequeue"),
        ],
        vec![
            Invocation::with_int("Enqueue", 20),
            Invocation::new("TryDequeue"),
        ],
    ])
}

fn exhaustive(por: bool, symmetry: bool) -> CheckOptions {
    CheckOptions::new()
        .with_preemption_bound(None)
        .with_por(por)
        .with_symmetry(symmetry)
        .collect_all_violations()
}

#[test]
fn symmetry_matches_baseline_on_every_class() {
    let all = all_classes();
    for entry in &all {
        let matrix = small(matrix_for(entry, &all));
        let groups = matrix.symmetry_groups(entry.symmetry_policy());
        for por in [false, true] {
            eprintln!("checking {} (por={por})...", entry.name);
            let off = entry.target().check(&matrix, &exhaustive(por, false));
            let on = entry.target().check(&matrix, &exhaustive(por, true));
            assert_eq!(
                off.passed(),
                on.passed(),
                "{} (por={por}): verdict must not change under symmetry",
                entry.name
            );
            assert_eq!(
                canonical_keys(&groups, &off.violations),
                canonical_keys(&groups, &on.violations),
                "{} (por={por}): violating symmetry classes must match",
                entry.name
            );
            assert!(
                on.phase2.runs <= off.phase2.runs,
                "{} (por={por}): symmetry must not add runs ({} > {})",
                entry.name,
                on.phase2.runs,
                off.phase2.runs
            );
            assert!(
                on.phase2.full_histories <= off.phase2.full_histories,
                "{} (por={por}): canonical classes cannot outnumber raw histories",
                entry.name
            );
            if groups.is_empty() {
                // No symmetric threads: the reduction is inert and the
                // reports must be byte-identical, decisions included.
                assert_eq!(on.phase2.runs, off.phase2.runs, "{}", entry.name);
                assert_eq!(on.phase2.symmetry_prunes, 0, "{}", entry.name);
                assert_eq!(
                    format!("{:?}", off.violations),
                    format!("{:?}", on.violations),
                    "{} (por={por}): inert symmetry must be invisible",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn symmetry_prunes_symmetric_schedules() {
    // On a genuinely thread-symmetric matrix the reduction must do real
    // work on top of POR: fewer runs, counted prunes, and (with the
    // spared duplicates gone) each violating class reported once.
    let all = all_classes();
    let matrix = symmetric_queue_matrix();
    for name in ["ConcurrentQueue", "ConcurrentQueue (Pre)"] {
        let entry = all.iter().find(|e| e.name == name).expect("registry");
        let groups = matrix.symmetry_groups(entry.symmetry_policy());
        assert!(!groups.is_empty(), "{name}: matrix should be symmetric");
        for por in [false, true] {
            let off = entry.target().check(&matrix, &exhaustive(por, false));
            let on = entry.target().check(&matrix, &exhaustive(por, true));
            assert!(
                on.phase2.runs < off.phase2.runs,
                "{name} (por={por}): expected a strict run reduction ({} vs {})",
                on.phase2.runs,
                off.phase2.runs
            );
            assert!(
                on.phase2.symmetry_prunes > 0,
                "{name} (por={por}): prunes must be counted"
            );
            assert_eq!(off.passed(), on.passed(), "{name} (por={por})");
            assert_eq!(
                canonical_keys(&groups, &off.violations),
                canonical_keys(&groups, &on.violations),
                "{name} (por={por})"
            );
        }
    }
}

#[test]
fn symmetry_is_inert_under_preemption_bounds() {
    // Like sleep sets, sibling pruning assumes the deferred schedule
    // stays reachable — a preemption bound can cut it off, so symmetry
    // must disengage and the bounded explorations must be identical run
    // for run. Canonical verdict-cache keys stay active (they are a
    // dedup, not a prune), so history *counts* may differ; runs and
    // violating classes may not.
    let all = all_classes();
    let matrix = symmetric_queue_matrix();
    let entry = all
        .iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry");
    let groups = matrix.symmetry_groups(entry.symmetry_policy());
    for bound in 0..=2 {
        let opts = |symmetry| {
            CheckOptions::new()
                .with_preemption_bound(Some(bound))
                .with_por(true)
                .with_symmetry(symmetry)
                .collect_all_violations()
        };
        let off = entry.target().check(&matrix, &opts(false));
        let on = entry.target().check(&matrix, &opts(true));
        assert_eq!(
            off.phase2.runs, on.phase2.runs,
            "bound {bound}: symmetry must disengage"
        );
        assert_eq!(
            on.phase2.symmetry_prunes, 0,
            "bound {bound}: no prunes under a bound"
        );
        assert_eq!(off.passed(), on.passed(), "bound {bound}");
        assert_eq!(
            canonical_keys(&groups, &off.violations),
            canonical_keys(&groups, &on.violations),
            "bound {bound}"
        );
    }
}

#[test]
fn symmetry_matches_baseline_under_workers() {
    let all = all_classes();
    let matrix = symmetric_queue_matrix();
    for name in ["ConcurrentQueue", "ConcurrentQueue (Pre)"] {
        let entry = all.iter().find(|e| e.name == name).expect("registry");
        let groups = matrix.symmetry_groups(entry.symmetry_policy());
        let baseline = entry.target().check(&matrix, &exhaustive(true, false));
        for workers in [1, 2, 4] {
            let on = entry.target().check(
                &matrix,
                &exhaustive(true, true)
                    .with_workers(workers)
                    .with_parallel_probe_runs(0),
            );
            assert_eq!(
                baseline.passed(),
                on.passed(),
                "{name} with {workers} worker(s)"
            );
            assert_eq!(
                canonical_keys(&groups, &baseline.violations),
                canonical_keys(&groups, &on.violations),
                "{name} with {workers} worker(s)"
            );
            assert!(
                on.phase2.runs < baseline.phase2.runs,
                "{name} with {workers} worker(s): reduction must survive stealing"
            );
        }
    }
}

#[test]
fn symmetry_matches_baseline_across_backends() {
    // The backend moves fibers vs OS threads underneath the scheduler;
    // the symmetry mask is computed at the decision layer above it, so
    // reduced explorations must be byte-identical across backends.
    let all = all_classes();
    let matrix = symmetric_queue_matrix();
    let entry = all
        .iter()
        .find(|e| e.name == "ConcurrentQueue (Pre)")
        .expect("registry");
    let fibers = entry.target().check(
        &matrix,
        &exhaustive(true, true).with_backend(Backend::Fibers),
    );
    let os = entry.target().check(
        &matrix,
        &exhaustive(true, true).with_backend(Backend::OsThreads),
    );
    assert_eq!(fibers.phase2.runs, os.phase2.runs);
    assert_eq!(fibers.phase2.symmetry_prunes, os.phase2.symmetry_prunes);
    assert_eq!(
        format!("{:?}", fibers.violations),
        format!("{:?}", os.violations),
        "backends must not perturb the reduced exploration"
    );
}

#[test]
fn concurrent_bag_auto_disables_symmetry() {
    // The bag's verdict depends on thread identity (per-thread slot
    // lists scanned in order), so its policy is `Disabled`: even on a
    // literally thread-symmetric matrix the reduction must stay inert
    // and the reports byte-identical.
    let all = all_classes();
    let entry = all
        .iter()
        .find(|e| e.name == "ConcurrentBag")
        .expect("registry");
    assert_eq!(
        entry.symmetry_policy(),
        lineup::SymmetryPolicy::Disabled,
        "bag must opt out of symmetry"
    );
    let matrix = TestMatrix::from_columns(vec![
        vec![Invocation::with_int("Add", 7)],
        vec![Invocation::with_int("Add", 7)],
    ]);
    assert!(
        matrix.symmetry_groups(entry.symmetry_policy()).is_empty(),
        "Disabled policy must yield no groups even on identical columns"
    );
    let off = entry.target().check(&matrix, &exhaustive(true, false));
    let on = entry.target().check(&matrix, &exhaustive(true, true));
    assert_eq!(off.phase2.runs, on.phase2.runs);
    assert_eq!(on.phase2.symmetry_prunes, 0);
    assert_eq!(
        format!("{:?}", off.violations),
        format!("{:?}", on.violations)
    );
    assert_eq!(off.passed(), on.passed());
}
