//! Integration tests for the paper's formal claims, on concrete
//! instances: completeness (Theorem 5), test-extension monotonicity
//! (Lemma 8), and the specification-synthesis lemma (Lemma 9).

use lineup::doc_support::{BuggyCounterTarget, CounterTarget};
use lineup::{
    check, find_witness, synthesize_spec, CheckOptions, Invocation, SerialHistory, TestMatrix,
    Violation, WitnessQuery,
};

fn inc() -> Invocation {
    Invocation::new("inc")
}
fn get() -> Invocation {
    Invocation::new("get")
}

/// Theorem 5 (completeness): a reported violation is conclusive — we
/// re-verify by hand that the violating history has no witness among the
/// synthesized serial behaviors.
#[test]
fn reported_violations_are_conclusive() {
    let m = TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()]]);
    let report = check(&BuggyCounterTarget, &m, &CheckOptions::new());
    let violation = report.first_violation().expect("buggy counter fails");
    match violation {
        Violation::NoWitness { history, .. } => {
            assert!(history.is_complete());
            let q = WitnessQuery::for_full(history);
            let index = report.spec.index();
            assert!(
                find_witness(&index, &q).is_none(),
                "the tool's verdict is independently reproducible"
            );
            // Exhaustive double-check: no serial history whatsoever is a
            // witness, not just none in the matching group.
            for s in report.spec.iter() {
                assert!(!lineup::is_witness(s, &q));
            }
        }
        other => panic!("expected NoWitness, got {other:?}"),
    }
}

/// Lemma 8 (on concrete tests): if `Check(X, m)` fails and `m` is a
/// prefix of `m'`, then `Check(X, m')` fails too.
#[test]
fn failing_tests_still_fail_when_extended() {
    let m = TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()]]);
    let opts = CheckOptions::new();
    assert!(!check(&BuggyCounterTarget, &m, &opts).passed());

    let extensions = vec![
        // One more op on thread 0.
        TestMatrix::from_columns(vec![vec![inc(), get(), inc()], vec![inc()]]),
        // One more op on thread 1.
        TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc(), get()]]),
        // A whole new column.
        TestMatrix::from_columns(vec![vec![inc(), get()], vec![inc()], vec![get()]]),
    ];
    for ext in extensions {
        assert!(m.is_prefix_of(&ext));
        assert!(
            !check(&BuggyCounterTarget, &ext, &opts).passed(),
            "extension must still fail:\n{ext}"
        );
    }
}

/// Passing tests may pass or fail when extended (extension can only
/// *reveal* bugs); for the correct counter everything keeps passing.
#[test]
fn correct_counter_passes_extensions() {
    let m = TestMatrix::from_columns(vec![vec![inc()], vec![get()]]);
    let ext = TestMatrix::from_columns(vec![vec![inc(), inc()], vec![get(), get()]]);
    let opts = CheckOptions::new();
    assert!(check(&CounterTarget, &m, &opts).passed());
    assert!(check(&CounterTarget, &ext, &opts).passed());
}

/// Lemma 9 (specification synthesis): for a deterministically
/// linearizable implementation, phase 1 synthesizes a deterministic
/// specification containing every serial behavior — in particular, every
/// serial permutation of the test's operations appears exactly once with
/// its canonical outcome.
#[test]
fn phase1_synthesizes_the_full_deterministic_spec() {
    let m = TestMatrix::from_columns(vec![vec![inc()], vec![inc()], vec![get()]]);
    let (spec, stats, panic) = synthesize_spec(&CounterTarget, &m);
    assert!(panic.is_none());
    assert!(spec.check_determinism().is_none());
    // 3 ops on 3 threads: 3! = 6 serial orders, all complete.
    assert_eq!(stats.runs, 6);
    assert_eq!(spec.full_count(), 6);
    assert_eq!(spec.stuck_count(), 0);
    // get returns the number of incs that precede it in each history.
    for h in spec.iter() {
        let pos = h
            .ops
            .iter()
            .position(|o| o.invocation.name == "get")
            .unwrap();
        let expected = pos as i64; // both incs precede iff pos == 2, etc.
        match &h.ops[pos].outcome {
            lineup::Outcome::Returned(lineup::Value::Int(v)) => assert_eq!(*v, expected),
            other => panic!("get returned {other:?}"),
        }
    }
}

/// The 3×3 combinatorial ceiling of §5.5: a 3×3 test of never-blocking
/// operations has exactly 9!/(3!·3!·3!) = 1680 full serial histories.
#[test]
fn serial_history_count_matches_the_multinomial() {
    let col = vec![inc(), get(), inc()];
    let m = TestMatrix::from_columns(vec![col.clone(), col.clone(), col]);
    let (spec, stats, _) = synthesize_spec(&CounterTarget, &m);
    assert_eq!(stats.runs, 1680);
    assert_eq!(spec.full_count() + spec.stuck_count(), spec.len());
    assert!(spec.len() <= 1680);
}

/// Determinism check (Fig. 5 line 4) fires on genuinely nondeterministic
/// serial behavior.
#[test]
fn nondeterministic_component_fails_phase_1() {
    use lineup::{TestInstance, TestTarget, Value};
    use lineup_sync::Atomic;

    /// A counter whose `get` result depends on a modelled timeout — i.e.
    /// on something other than the serial history prefix.
    struct FlakyTarget;
    struct Flaky {
        count: Atomic<i64>,
    }
    impl TestInstance for Flaky {
        fn invoke(&self, inv: &Invocation) -> Value {
            match inv.name.as_str() {
                "inc" => {
                    self.count.fetch_add(1);
                    Value::Unit
                }
                "flakyGet" => {
                    // Nondeterministic even in serial executions.
                    if lineup_sched::choose_bool() {
                        Value::Int(self.count.load())
                    } else {
                        Value::Fail
                    }
                }
                other => panic!("unknown {other}"),
            }
        }
    }
    impl TestTarget for FlakyTarget {
        type Instance = Flaky;
        fn name(&self) -> &str {
            "Flaky"
        }
        fn create(&self) -> Flaky {
            Flaky {
                count: Atomic::new(0),
            }
        }
        fn invocations(&self) -> Vec<Invocation> {
            vec![Invocation::new("inc"), Invocation::new("flakyGet")]
        }
    }

    let m = TestMatrix::from_columns(vec![vec![Invocation::new("flakyGet")], vec![inc()]]);
    let report = check(&FlakyTarget, &m, &CheckOptions::new());
    assert!(matches!(
        report.first_violation(),
        Some(Violation::Nondeterminism(_))
    ));
    // Phase 2 never ran: the determinism check rejects first.
    assert_eq!(report.phase2.runs, 0);
}

/// SerialHistory conversion sanity, via the public surface used above.
#[test]
fn spec_histories_are_serial_by_construction() {
    let m = TestMatrix::from_columns(vec![vec![inc()], vec![get()]]);
    let (spec, _, _) = synthesize_spec(&CounterTarget, &m);
    let all: Vec<&SerialHistory> = spec.iter().collect();
    assert_eq!(all.len(), 2);
    for h in all {
        assert!(!h.is_stuck());
        assert_eq!(h.ops.len(), 2);
    }
}
