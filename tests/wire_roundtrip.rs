//! Property tests for the `lineup-wire` stream format: random record
//! sequences survive an encode → frame → decode round trip unchanged,
//! truncating a stream at any byte is detected (never a panic, never a
//! fabricated record), and streams that do not open with a well-formed
//! `Hello` are rejected by the handshake.

// The vendored `proptest!` macro recurses once per body token.
#![recursion_limit = "1024"]

use proptest::prelude::*;

use lineup::{AdtKind, Value};
use lineup_wire::{
    decode_payload, encode_record, FrameReader, FrameWriter, Record, WireError, VERSION,
};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        Just(Value::Fail),
        Just(Value::Opt(None)),
        any::<bool>().prop_map(Value::Bool),
        (i64::MIN..i64::MAX).prop_map(Value::Int),
        "[a-zA-Z0-9 \"\\\\]{0,10}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Seq),
            inner.prop_map(Value::some),
        ]
    })
}

fn kind_strategy() -> impl Strategy<Value = Option<AdtKind>> {
    prop_oneof![
        Just(None),
        Just(Some(AdtKind::Queue)),
        Just(Some(AdtKind::Stack)),
        Just(Some(AdtKind::Set)),
        Just(Some(AdtKind::PriorityQueue)),
    ]
}

/// Owned mirror of [`Record`] (whose `Call` borrows its name), so
/// strategies can produce and shrink records by value.
#[derive(Debug, Clone)]
enum OwnedRecord {
    Hello {
        version: u32,
    },
    Register {
        object: u64,
        kind: Option<AdtKind>,
        threads: u32,
    },
    Call {
        object: u64,
        thread: u32,
        ts: u64,
        name: String,
        args: Vec<Value>,
    },
    Return {
        object: u64,
        thread: u32,
        ts: u64,
        value: Value,
    },
    End {
        object: u64,
        stuck: bool,
    },
    Shutdown,
}

impl OwnedRecord {
    fn as_record(&self) -> Record<'_> {
        match self {
            OwnedRecord::Hello { version } => Record::Hello { version: *version },
            OwnedRecord::Register {
                object,
                kind,
                threads,
            } => Record::ObjectRegister {
                object: *object,
                kind: *kind,
                threads: *threads,
            },
            OwnedRecord::Call {
                object,
                thread,
                ts,
                name,
                args,
            } => Record::Call {
                object: *object,
                thread: *thread,
                ts: *ts,
                name,
                args: args.clone(),
            },
            OwnedRecord::Return {
                object,
                thread,
                ts,
                value,
            } => Record::Return {
                object: *object,
                thread: *thread,
                ts: *ts,
                value: value.clone(),
            },
            OwnedRecord::End { object, stuck } => Record::ObjectEnd {
                object: *object,
                stuck: *stuck,
            },
            OwnedRecord::Shutdown => Record::Shutdown,
        }
    }
}

fn record_strategy() -> impl Strategy<Value = OwnedRecord> {
    prop_oneof![
        (0u32..2).prop_map(|version| OwnedRecord::Hello { version }),
        ((0u64..u64::MAX), kind_strategy(), 0u32..64).prop_map(|(object, kind, threads)| {
            OwnedRecord::Register {
                object,
                kind,
                threads,
            }
        }),
        (
            (0u64..1 << 40),
            0u32..64,
            (0u64..u64::MAX),
            "[a-zA-Z][a-zA-Z0-9]{0,11}",
            prop::collection::vec(value_strategy(), 0..3),
        )
            .prop_map(|(object, thread, ts, name, args)| OwnedRecord::Call {
                object,
                thread,
                ts,
                name,
                args,
            }),
        (
            (0u64..1 << 40),
            0u32..64,
            (0u64..u64::MAX),
            value_strategy()
        )
            .prop_map(|(object, thread, ts, value)| OwnedRecord::Return {
                object,
                thread,
                ts,
                value,
            }),
        ((0u64..u64::MAX), any::<bool>())
            .prop_map(|(object, stuck)| OwnedRecord::End { object, stuck }),
        Just(OwnedRecord::Shutdown),
    ]
}

/// Frames an arbitrary payload by hand: varint length prefix + bytes.
fn frame_raw(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut len = payload.len();
    loop {
        let mut b = (len & 0x7f) as u8;
        len >>= 7;
        if len != 0 {
            b |= 0x80;
        }
        bytes.push(b);
        if len == 0 {
            break;
        }
    }
    bytes.extend_from_slice(payload);
    bytes
}

fn encode_all(records: &[OwnedRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut w = FrameWriter::new(&mut bytes);
    for r in records {
        w.write_record(&r.as_record()).unwrap();
    }
    drop(w);
    bytes
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    /// Encode → frame → decode is the identity on any record sequence,
    /// including deeply nested argument and response values.
    #[test]
    fn stream_round_trip_is_identity(records in prop::collection::vec(record_strategy(), 0..12)) {
        let bytes = encode_all(&records);
        let mut reader = FrameReader::new(&bytes[..]);
        let mut seen = 0usize;
        while let Some(decoded) = reader.next_record().unwrap() {
            prop_assert!(seen < records.len(), "decoded more records than written");
            let expect = records[seen].as_record();
            prop_assert_eq!(format!("{decoded:?}"), format!("{:?}", expect));
            seen += 1;
        }
        prop_assert_eq!(seen, records.len());
    }

}

proptest! {
    /// Any strict byte prefix of a valid stream either yields fewer
    /// records cleanly (cut on a frame boundary) or fails with
    /// `Truncated` — it never panics and never fabricates a record not
    /// in the original sequence.
    #[test]
    fn truncated_streams_are_detected(
        records in prop::collection::vec(record_strategy(), 1..8),
        cut_sel in 0usize..10_000,
    ) {
        let bytes = encode_all(&records);
        let cut = cut_sel % bytes.len();
        let mut reader = FrameReader::new(&bytes[..cut]);
        let mut seen = 0usize;
        loop {
            match reader.next_record() {
                Ok(Some(decoded)) => {
                    prop_assert!(seen < records.len());
                    let expect = records[seen].as_record();
                    prop_assert_eq!(format!("{decoded:?}"), format!("{:?}", expect));
                    seen += 1;
                }
                Ok(None) | Err(WireError::Truncated) => break,
                Err(other) => prop_assert!(false, "unexpected error on prefix: {other}"),
            }
        }
        prop_assert!(seen < records.len(), "a strict prefix cannot hold every record");
    }

}

proptest! {
    /// A stream whose first frame carries a non-`Hello` payload — any
    /// leading byte that is not the `Hello` tag — fails the handshake,
    /// even when a perfectly valid stream follows it.
    #[test]
    fn garbage_prefix_fails_the_handshake(
        payload in prop::collection::vec((0u32..256).prop_map(|b| b as u8), 1..24),
        first in (6u32..256).prop_map(|b| b as u8),
        records in prop::collection::vec(record_strategy(), 0..3),
    ) {
        // Tag 0x00 is Hello; 0x01..=0x05 are other (rejected) records;
        // anything >= 0x06 cannot decode at all.
        let mut payload = payload;
        payload[0] = first;
        let mut bytes = frame_raw(&payload);
        bytes.extend_from_slice(&encode_all(&records));
        let mut reader = FrameReader::new(&bytes[..]);
        prop_assert!(reader.expect_hello().is_err());
    }

}

proptest! {
    /// Raw garbage never panics the reader: every outcome is a clean
    /// record, a clean end of stream, or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec((0u32..256).prop_map(|b| b as u8), 0..64)) {
        let mut reader = FrameReader::new(&bytes[..]);
        for _ in 0..=bytes.len() {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic spot checks
// ---------------------------------------------------------------------

#[test]
fn current_version_handshake_is_accepted() {
    let mut bytes = Vec::new();
    encode_record(&Record::Hello { version: VERSION }, &mut bytes);
    let mut reader = FrameReader::new(&bytes[..]);
    assert_eq!(reader.expect_hello().unwrap(), VERSION);
}

#[test]
fn payload_with_trailing_bytes_is_rejected() {
    let mut payload = Vec::new();
    let mut framed = Vec::new();
    encode_record(&Record::Shutdown, &mut framed);
    payload.extend_from_slice(&framed[1..]); // strip the length prefix
    payload.push(0x00);
    assert!(matches!(
        decode_payload(&payload),
        Err(WireError::TrailingBytes)
    ));
}
